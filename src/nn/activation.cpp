#include "nn/activation.hpp"

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace marsit {

Relu::Relu(std::size_t size) : size_(size) {
  MARSIT_CHECK(size_ > 0) << "degenerate ReLU";
}

void Relu::forward(std::span<const float> x, std::size_t batch,
                   std::span<float> y) {
  MARSIT_CHECK(x.size() == batch * size_ && y.size() == x.size())
      << "ReLU extent mismatch";
  if (mask_.size() != x.size()) {
    mask_ = Tensor(x.size());
  }
  auto mask = mask_.span();
  for (std::size_t i = 0; i < x.size(); ++i) {
    const bool active = x[i] > 0.0f;
    mask[i] = active ? 1.0f : 0.0f;
    y[i] = active ? x[i] : 0.0f;
  }
}

void Relu::backward(std::span<const float> dy, std::size_t batch,
                    std::span<float> dx) {
  MARSIT_CHECK(dy.size() == batch * size_ && dx.size() == dy.size())
      << "ReLU backward extent mismatch";
  MARSIT_CHECK(mask_.size() == dy.size())
      << "ReLU backward without matching forward";
  hadamard(dy, mask_.span(), dx);
}

Flatten::Flatten(std::size_t size) : size_(size) {
  MARSIT_CHECK(size_ > 0) << "degenerate Flatten";
}

void Flatten::forward(std::span<const float> x, std::size_t batch,
                      std::span<float> y) {
  MARSIT_CHECK(x.size() == batch * size_ && y.size() == x.size())
      << "Flatten extent mismatch";
  copy_into(x, y);
}

void Flatten::backward(std::span<const float> dy, std::size_t batch,
                       std::span<float> dx) {
  MARSIT_CHECK(dy.size() == batch * size_ && dx.size() == dy.size())
      << "Flatten backward extent mismatch";
  copy_into(dy, dx);
}

}  // namespace marsit
