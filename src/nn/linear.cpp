#include "nn/linear.hpp"

#include <cmath>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace marsit {

Linear::Linear(std::size_t in_features, std::size_t out_features,
               bool with_bias)
    : in_(in_features),
      out_(out_features),
      with_bias_(with_bias),
      storage_(in_features * out_features + (with_bias ? out_features : 0)),
      grad_storage_(storage_.size()) {
  MARSIT_CHECK(in_ > 0 && out_ > 0) << "degenerate linear layer";
}

std::string Linear::name() const {
  return "Linear(" + std::to_string(in_) + "->" + std::to_string(out_) + ")";
}

void Linear::forward(std::span<const float> x, std::size_t batch,
                     std::span<float> y) {
  MARSIT_CHECK(x.size() == batch * in_) << "linear forward: x extent";
  MARSIT_CHECK(y.size() == batch * out_) << "linear forward: y extent";
  if (cached_input_.size() != x.size()) {
    cached_input_ = Tensor(x.size());
  }
  copy_into(x, cached_input_.span());

  // y(b×out) = x(b×in) · Wᵀ, W stored (out×in).
  matmul_a_bt(x, weights(), y, batch, in_, out_);
  if (with_bias_) {
    auto b = bias();
    for (std::size_t row = 0; row < batch; ++row) {
      axpy(1.0f, b, y.subspan(row * out_, out_));
    }
  }
}

void Linear::backward(std::span<const float> dy, std::size_t batch,
                      std::span<float> dx) {
  MARSIT_CHECK(dy.size() == batch * out_) << "linear backward: dy extent";
  MARSIT_CHECK(dx.size() == batch * in_) << "linear backward: dx extent";
  MARSIT_CHECK(cached_input_.size() == batch * in_)
      << "linear backward without matching forward";

  // dW(out×in) += dyᵀ(out×b) · x(b×in)
  auto dw = grad_storage_.span().subspan(0, in_ * out_);
  matmul_at_b(dy, cached_input_.span(), dw, out_, batch, in_, /*beta=*/1.0f);

  if (with_bias_) {
    auto db = grad_storage_.span().subspan(in_ * out_, out_);
    for (std::size_t row = 0; row < batch; ++row) {
      axpy(1.0f, dy.subspan(row * out_, out_), db);
    }
  }

  // dx(b×in) = dy(b×out) · W(out×in)
  matmul(dy, weights(), dx, batch, out_, in_);
}

void Linear::init(Rng& rng) {
  const float bound =
      init_scale_ * std::sqrt(6.0f / static_cast<float>(in_));
  fill_uniform(weights(), rng, -bound, bound);
  if (with_bias_) {
    zero(bias());
  }
  grad_storage_.zero();
}

}  // namespace marsit
