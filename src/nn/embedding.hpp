// Token embedding and sequence mean-pooling — the text-classification
// substrate standing in for DistilBERT on IMDb (DESIGN.md §2).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "nn/layer.hpp"
#include "tensor/tensor.hpp"

namespace marsit {

/// Embedding lookup.  Input: seq_len token ids carried as floats (each value
/// must be an integer in [0, vocab)); output: seq_len × dim embeddings.
class Embedding final : public Layer {
 public:
  Embedding(std::size_t vocab_size, std::size_t dim, std::size_t seq_len);

  std::string name() const override;
  std::size_t in_size() const override { return seq_len_; }
  std::size_t out_size() const override { return seq_len_ * dim_; }

  void forward(std::span<const float> x, std::size_t batch,
               std::span<float> y) override;
  /// dx is zero (token ids are not differentiable); gradients accumulate
  /// into the embedding table rows.
  void backward(std::span<const float> dy, std::size_t batch,
                std::span<float> dx) override;

  std::span<float> params() override { return table_.span(); }
  std::span<const float> params() const override { return table_.span(); }
  std::span<float> grads() override { return grad_.span(); }

  void init(Rng& rng) override;

  double forward_macs_per_sample() const override {
    // Table lookups: one copy of `dim` floats per token.
    return static_cast<double>(seq_len_) * static_cast<double>(dim_);
  }

 private:
  std::size_t vocab_;
  std::size_t dim_;
  std::size_t seq_len_;
  Tensor table_;  // vocab × dim
  Tensor grad_;
  std::vector<std::size_t> cached_ids_;
};

/// Mean over the sequence axis: (seq_len, dim) → (dim).
class MeanPool final : public Layer {
 public:
  MeanPool(std::size_t seq_len, std::size_t dim);

  std::string name() const override { return "MeanPool"; }
  std::size_t in_size() const override { return seq_len_ * dim_; }
  std::size_t out_size() const override { return dim_; }

  void forward(std::span<const float> x, std::size_t batch,
               std::span<float> y) override;
  void backward(std::span<const float> dy, std::size_t batch,
                std::span<float> dx) override;

 private:
  std::size_t seq_len_;
  std::size_t dim_;
};

}  // namespace marsit
