#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace marsit {

namespace {

LossResult run(std::span<const float> logits,
               std::span<const std::size_t> labels, std::size_t num_classes,
               std::span<float>* dlogits) {
  MARSIT_CHECK(num_classes >= 2) << "need at least two classes";
  MARSIT_CHECK(!labels.empty()) << "empty batch";
  MARSIT_CHECK(logits.size() == labels.size() * num_classes)
      << "logit extent " << logits.size() << " vs batch "
      << labels.size() << " x " << num_classes;
  if (dlogits != nullptr) {
    MARSIT_CHECK(dlogits->size() == logits.size()) << "dlogits extent";
  }

  const std::size_t batch = labels.size();
  const double inv_batch = 1.0 / static_cast<double>(batch);
  LossResult result;
  std::vector<double> probs(num_classes);

  for (std::size_t n = 0; n < batch; ++n) {
    MARSIT_CHECK(labels[n] < num_classes)
        << "label " << labels[n] << " out of " << num_classes;
    const float* row = logits.data() + n * num_classes;

    float max_logit = row[0];
    std::size_t arg = 0;
    for (std::size_t c = 1; c < num_classes; ++c) {
      if (row[c] > max_logit) {
        max_logit = row[c];
        arg = c;
      }
    }
    if (arg == labels[n]) {
      ++result.correct;
    }

    double denom = 0.0;
    for (std::size_t c = 0; c < num_classes; ++c) {
      probs[c] = std::exp(static_cast<double>(row[c] - max_logit));
      denom += probs[c];
    }
    for (std::size_t c = 0; c < num_classes; ++c) {
      probs[c] /= denom;
    }
    // -log p[label], clamped away from 0 so a catastrophically confident
    // wrong prediction yields a large finite loss instead of inf.
    result.loss += -std::log(std::max(probs[labels[n]], 1e-12));

    if (dlogits != nullptr) {
      float* drow = dlogits->data() + n * num_classes;
      for (std::size_t c = 0; c < num_classes; ++c) {
        drow[c] = static_cast<float>(
            (probs[c] - (c == labels[n] ? 1.0 : 0.0)) * inv_batch);
      }
    }
  }
  result.loss *= inv_batch;
  return result;
}

}  // namespace

LossResult softmax_cross_entropy(std::span<const float> logits,
                                 std::span<const std::size_t> labels,
                                 std::size_t num_classes,
                                 std::span<float> dlogits) {
  return run(logits, labels, num_classes, &dlogits);
}

LossResult softmax_cross_entropy_eval(std::span<const float> logits,
                                      std::span<const std::size_t> labels,
                                      std::size_t num_classes) {
  return run(logits, labels, num_classes, nullptr);
}

}  // namespace marsit
