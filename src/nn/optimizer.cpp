#include "nn/optimizer.hpp"

#include <cmath>
#include <vector>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace marsit {

namespace {

/// Rebuilds a tensor from a length-prefixed float array; an empty array maps
/// to an empty tensor (state not yet materialized when the snapshot was
/// taken — the lazy-sizing path recreates it on the next transform).
Tensor tensor_from_vec(const std::vector<float>& values) {
  Tensor tensor(values.size());
  copy_into(values, tensor.span());
  return tensor;
}

}  // namespace

void LocalOptimizer::save_state(ckpt::SnapshotWriter& /*writer*/) const {}

void LocalOptimizer::load_state(ckpt::SnapshotReader& /*reader*/) {}

void SgdOptimizer::transform(std::span<const float> grad,
                             std::span<float> direction) {
  copy_into(grad, direction);
}

std::unique_ptr<LocalOptimizer> SgdOptimizer::clone_fresh() const {
  return std::make_unique<SgdOptimizer>();
}

MomentumOptimizer::MomentumOptimizer(float mu) : mu_(mu) {
  MARSIT_CHECK(mu_ >= 0.0f && mu_ < 1.0f) << "momentum out of [0,1)";
}

void MomentumOptimizer::transform(std::span<const float> grad,
                                  std::span<float> direction) {
  if (velocity_.size() != grad.size()) {
    velocity_ = Tensor(grad.size());
  }
  auto v = velocity_.span();
  scale(v, mu_);
  axpy(1.0f, grad, v);
  copy_into(v, direction);
}

std::unique_ptr<LocalOptimizer> MomentumOptimizer::clone_fresh() const {
  return std::make_unique<MomentumOptimizer>(mu_);
}

void MomentumOptimizer::save_state(ckpt::SnapshotWriter& writer) const {
  writer.f32_span(velocity_.span());
}

void MomentumOptimizer::load_state(ckpt::SnapshotReader& reader) {
  velocity_ = tensor_from_vec(reader.f32_vec());
}

AdamOptimizer::AdamOptimizer(float beta1, float beta2, float epsilon)
    : beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {
  MARSIT_CHECK(beta1_ >= 0.0f && beta1_ < 1.0f) << "beta1 out of [0,1)";
  MARSIT_CHECK(beta2_ >= 0.0f && beta2_ < 1.0f) << "beta2 out of [0,1)";
  MARSIT_CHECK(epsilon_ > 0.0f) << "epsilon must be positive";
}

void AdamOptimizer::transform(std::span<const float> grad,
                              std::span<float> direction) {
  if (m_.size() != grad.size()) {
    m_ = Tensor(grad.size());
    v_ = Tensor(grad.size());
    step_ = 0;
  }
  ++step_;
  auto m = m_.span();
  auto v = v_.span();
  const double bc1 =
      1.0 - std::pow(static_cast<double>(beta1_), static_cast<double>(step_));
  const double bc2 =
      1.0 - std::pow(static_cast<double>(beta2_), static_cast<double>(step_));
  for (std::size_t i = 0; i < grad.size(); ++i) {
    m[i] = beta1_ * m[i] + (1.0f - beta1_) * grad[i];
    v[i] = beta2_ * v[i] + (1.0f - beta2_) * grad[i] * grad[i];
    const double m_hat = static_cast<double>(m[i]) / bc1;
    const double v_hat = static_cast<double>(v[i]) / bc2;
    direction[i] = static_cast<float>(
        m_hat / (std::sqrt(v_hat) + static_cast<double>(epsilon_)));
  }
}

std::unique_ptr<LocalOptimizer> AdamOptimizer::clone_fresh() const {
  return std::make_unique<AdamOptimizer>(beta1_, beta2_, epsilon_);
}

void AdamOptimizer::save_state(ckpt::SnapshotWriter& writer) const {
  writer.u64(static_cast<std::uint64_t>(step_));
  writer.f32_span(m_.span());
  writer.f32_span(v_.span());
}

void AdamOptimizer::load_state(ckpt::SnapshotReader& reader) {
  step_ = static_cast<std::size_t>(reader.u64());
  m_ = tensor_from_vec(reader.f32_vec());
  v_ = tensor_from_vec(reader.f32_vec());
  MARSIT_CHECK(m_.size() == v_.size())
      << "Adam moment tensors disagree in size";
}

std::unique_ptr<LocalOptimizer> make_optimizer(OptimizerKind kind) {
  switch (kind) {
    case OptimizerKind::kSgd:
      return std::make_unique<SgdOptimizer>();
    case OptimizerKind::kMomentum:
      return std::make_unique<MomentumOptimizer>();
    case OptimizerKind::kAdam:
      return std::make_unique<AdamOptimizer>();
  }
  MARSIT_CHECK(false) << "unknown optimizer kind";
  return nullptr;
}

}  // namespace marsit
