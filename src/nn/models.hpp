// Model factories — the scaled stand-ins for the paper's AlexNet,
// ResNet-20/18/50 and DistilBERT (see DESIGN.md §2 for the substitution
// rationale).  Each factory returns an uninitialized Sequential; callers
// initialize every replica from the same seed so worker models start
// bit-identical.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/conv.hpp"
#include "nn/sequential.hpp"

namespace marsit {

/// Plain multi-layer perceptron.
Sequential make_mlp(std::size_t in_features,
                    const std::vector<std::size_t>& hidden,
                    std::size_t num_classes);

/// AlexNet-mini: conv-pool-conv-pool-fc-fc, the workhorse of Table 1,
/// Figure 1, Figure 3 and Figure 5.
Sequential make_alexnet_mini(ImageDims input, std::size_t num_classes);

/// ResNet-mini: stem conv + `blocks_per_stage` residual blocks in each of
/// three stages (channel widths base, 2·base, 4·base with stride-2
/// downsampling between stages) + global average pooling + linear head.
Sequential make_resnet_mini(ImageDims input, std::size_t num_classes,
                            std::size_t blocks_per_stage,
                            std::size_t base_channels);

/// Depth presets mirroring the paper's model lineup.
Sequential make_resnet20_mini(ImageDims input, std::size_t num_classes);
Sequential make_resnet18_mini(ImageDims input, std::size_t num_classes);
Sequential make_resnet50_mini(ImageDims input, std::size_t num_classes);

/// Text classifier: embedding → mean pooling → 2-layer MLP head (the
/// DistilBERT stand-in; trained with Adam like the paper's sentiment task).
Sequential make_text_classifier(std::size_t vocab_size, std::size_t seq_len,
                                std::size_t embed_dim,
                                std::size_t num_classes);

}  // namespace marsit
