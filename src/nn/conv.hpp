// 2-D convolution and pooling layers (NCHW layout, square kernels).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "nn/layer.hpp"
#include "tensor/tensor.hpp"

namespace marsit {

/// Spatial geometry of a conv/pool input.  Layers are constructed against a
/// fixed geometry (the mini models all run on fixed-size synthetic images).
struct ImageDims {
  std::size_t channels = 0;
  std::size_t height = 0;
  std::size_t width = 0;

  std::size_t size() const { return channels * height * width; }
};

class Conv2d final : public Layer {
 public:
  Conv2d(ImageDims in, std::size_t out_channels, std::size_t kernel,
         std::size_t stride = 1, std::size_t padding = 0);

  std::string name() const override;
  std::size_t in_size() const override { return in_.size(); }
  std::size_t out_size() const override { return out_dims().size(); }

  ImageDims out_dims() const;

  void forward(std::span<const float> x, std::size_t batch,
               std::span<float> y) override;
  void backward(std::span<const float> dy, std::size_t batch,
                std::span<float> dx) override;

  std::span<float> params() override { return storage_.span(); }
  std::span<const float> params() const override { return storage_.span(); }
  std::span<float> grads() override { return grad_storage_.span(); }

  void init(Rng& rng) override;

  double forward_macs_per_sample() const override {
    const ImageDims out = out_dims();
    return static_cast<double>(out.size()) *
           static_cast<double>(in_.channels * kernel_ * kernel_);
  }

 private:
  std::span<float> weights() {
    return storage_.span().subspan(0, weight_count_);
  }
  std::span<float> bias() {
    return storage_.span().subspan(weight_count_, out_channels_);
  }

  /// Expands one sample into patch rows; see forward() for the layout.
  void im2col(const float* x_n, float* cols) const;
  /// Scatter-adds patch-row gradients back to one sample's input image.
  void col2im(const float* cols, float* dx_n) const;

  ImageDims in_;
  std::size_t out_channels_;
  std::size_t kernel_;
  std::size_t stride_;
  std::size_t padding_;
  std::size_t weight_count_;
  Tensor storage_;       // [W(oc,ic,k,k) | b(oc)]
  Tensor grad_storage_;
  Tensor cached_cols_;   // im2col image cached by forward for backward
  std::size_t cached_batch_ = 0;
};

class MaxPool2d final : public Layer {
 public:
  MaxPool2d(ImageDims in, std::size_t kernel, std::size_t stride = 0);

  std::string name() const override;
  std::size_t in_size() const override { return in_.size(); }
  std::size_t out_size() const override { return out_dims().size(); }

  ImageDims out_dims() const;

  void forward(std::span<const float> x, std::size_t batch,
               std::span<float> y) override;
  void backward(std::span<const float> dy, std::size_t batch,
                std::span<float> dx) override;

 private:
  ImageDims in_;
  std::size_t kernel_;
  std::size_t stride_;
  std::vector<std::size_t> argmax_;  // flat input index of each output max
};

/// Averages each channel over its spatial extent: (C,H,W) → (C).
class GlobalAvgPool final : public Layer {
 public:
  explicit GlobalAvgPool(ImageDims in);

  std::string name() const override { return "GlobalAvgPool"; }
  std::size_t in_size() const override { return in_.size(); }
  std::size_t out_size() const override { return in_.channels; }

  void forward(std::span<const float> x, std::size_t batch,
               std::span<float> y) override;
  void backward(std::span<const float> dy, std::size_t batch,
                std::span<float> dx) override;

 private:
  ImageDims in_;
};

}  // namespace marsit
