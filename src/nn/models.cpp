#include "nn/models.hpp"

#include <memory>

#include "nn/activation.hpp"
#include "nn/embedding.hpp"
#include "nn/linear.hpp"
#include "nn/residual.hpp"
#include "util/check.hpp"

namespace marsit {

Sequential make_mlp(std::size_t in_features,
                    const std::vector<std::size_t>& hidden,
                    std::size_t num_classes) {
  Sequential model;
  std::size_t width = in_features;
  for (std::size_t h : hidden) {
    model.add(std::make_unique<Linear>(width, h));
    model.add(std::make_unique<Relu>(h));
    width = h;
  }
  model.add(std::make_unique<Linear>(width, num_classes));
  return model;
}

Sequential make_alexnet_mini(ImageDims input, std::size_t num_classes) {
  Sequential model;

  Conv2d conv1(input, /*out_channels=*/12, /*kernel=*/3, /*stride=*/1,
               /*padding=*/1);
  const ImageDims c1 = conv1.out_dims();
  model.add(std::make_unique<Conv2d>(input, 12, 3, 1, 1));
  model.add(std::make_unique<Relu>(c1.size()));

  MaxPool2d pool1(c1, /*kernel=*/2);
  const ImageDims p1 = pool1.out_dims();
  model.add(std::make_unique<MaxPool2d>(c1, 2));

  Conv2d conv2(p1, /*out_channels=*/24, /*kernel=*/3, /*stride=*/1,
               /*padding=*/1);
  const ImageDims c2 = conv2.out_dims();
  model.add(std::make_unique<Conv2d>(p1, 24, 3, 1, 1));
  model.add(std::make_unique<Relu>(c2.size()));

  MaxPool2d pool2(c2, /*kernel=*/2);
  const ImageDims p2 = pool2.out_dims();
  model.add(std::make_unique<MaxPool2d>(c2, 2));

  model.add(std::make_unique<Flatten>(p2.size()));
  model.add(std::make_unique<Linear>(p2.size(), 96));
  model.add(std::make_unique<Relu>(96));
  model.add(std::make_unique<Linear>(96, num_classes));
  return model;
}

Sequential make_resnet_mini(ImageDims input, std::size_t num_classes,
                            std::size_t blocks_per_stage,
                            std::size_t base_channels) {
  MARSIT_CHECK(blocks_per_stage >= 1) << "need at least one block per stage";
  MARSIT_CHECK(base_channels >= 2) << "base channel width too small";

  Sequential model;

  // Stem.
  Conv2d stem(input, base_channels, 3, 1, 1);
  ImageDims dims = stem.out_dims();
  model.add(std::make_unique<Conv2d>(input, base_channels, 3, 1, 1));
  model.add(std::make_unique<Relu>(dims.size()));

  for (std::size_t stage = 0; stage < 3; ++stage) {
    if (stage > 0) {
      // Downsample: stride-2 conv doubling the channel width.
      const std::size_t out_channels = dims.channels * 2;
      Conv2d down(dims, out_channels, 3, 2, 1);
      const ImageDims next = down.out_dims();
      model.add(std::make_unique<Conv2d>(dims, out_channels, 3, 2, 1));
      model.add(std::make_unique<Relu>(next.size()));
      dims = next;
    }
    for (std::size_t b = 0; b < blocks_per_stage; ++b) {
      model.add(std::make_unique<ResidualConvBlock>(dims));
    }
  }

  model.add(std::make_unique<GlobalAvgPool>(dims));
  // Small-scale head init: without normalization layers the pooled features
  // have O(depth) magnitude, and a full-scale head produces huge initial
  // logits whose first gradients destabilize momentum.
  auto head = std::make_unique<Linear>(dims.channels, num_classes);
  head->set_init_scale(0.1f);
  model.add(std::move(head));
  return model;
}

Sequential make_resnet20_mini(ImageDims input, std::size_t num_classes) {
  // ResNet-20's 3 stages × 3 blocks, narrow.
  return make_resnet_mini(input, num_classes, 3, 8);
}

Sequential make_resnet18_mini(ImageDims input, std::size_t num_classes) {
  // ResNet-18's 2-block stages, wider than the -20 preset (mirroring the
  // 11M-vs-0.27M parameter ordering of the real pair).
  return make_resnet_mini(input, num_classes, 2, 12);
}

Sequential make_resnet50_mini(ImageDims input, std::size_t num_classes) {
  // Deepest and widest preset (the paper's largest vision model).
  return make_resnet_mini(input, num_classes, 3, 14);
}

Sequential make_text_classifier(std::size_t vocab_size, std::size_t seq_len,
                                std::size_t embed_dim,
                                std::size_t num_classes) {
  Sequential model;
  model.add(std::make_unique<Embedding>(vocab_size, embed_dim, seq_len));
  model.add(std::make_unique<MeanPool>(seq_len, embed_dim));
  model.add(std::make_unique<Linear>(embed_dim, 64));
  model.add(std::make_unique<Relu>(64));
  model.add(std::make_unique<Linear>(64, num_classes));
  return model;
}

}  // namespace marsit
