// Parameter-free layers: ReLU and Flatten.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "nn/layer.hpp"
#include "tensor/tensor.hpp"

namespace marsit {

class Relu final : public Layer {
 public:
  explicit Relu(std::size_t size);

  std::string name() const override { return "ReLU"; }
  std::size_t in_size() const override { return size_; }
  std::size_t out_size() const override { return size_; }

  void forward(std::span<const float> x, std::size_t batch,
               std::span<float> y) override;
  void backward(std::span<const float> dy, std::size_t batch,
                std::span<float> dx) override;

 private:
  std::size_t size_;
  Tensor mask_;  // 1 where x > 0, cached from forward
};

/// Shape adapter: per-sample size is unchanged, data passes through; exists
/// so model definitions read like their PyTorch counterparts.
class Flatten final : public Layer {
 public:
  explicit Flatten(std::size_t size);

  std::string name() const override { return "Flatten"; }
  std::size_t in_size() const override { return size_; }
  std::size_t out_size() const override { return size_; }

  void forward(std::span<const float> x, std::size_t batch,
               std::span<float> y) override;
  void backward(std::span<const float> dy, std::size_t batch,
                std::span<float> dx) override;

 private:
  std::size_t size_;
};

}  // namespace marsit
