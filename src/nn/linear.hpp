// Fully connected layer: y = x·Wᵀ + b, W stored (out×in) row-major.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "nn/layer.hpp"
#include "tensor/tensor.hpp"

namespace marsit {

class Linear final : public Layer {
 public:
  Linear(std::size_t in_features, std::size_t out_features,
         bool with_bias = true);

  std::string name() const override;
  std::size_t in_size() const override { return in_; }
  std::size_t out_size() const override { return out_; }

  void forward(std::span<const float> x, std::size_t batch,
               std::span<float> y) override;
  void backward(std::span<const float> dy, std::size_t batch,
                std::span<float> dx) override;

  std::span<float> params() override { return storage_.span(); }
  std::span<const float> params() const override { return storage_.span(); }
  std::span<float> grads() override { return grad_storage_.span(); }

  /// He-uniform fan-in initialization (times init_scale); bias zero.
  void init(Rng& rng) override;

  /// Multiplies the init() draw — classifier heads on deep unnormalized
  /// nets use a small scale (e.g. 0.1) so initial logits stay near zero and
  /// the first gradients don't blow up momentum.
  void set_init_scale(float scale) { init_scale_ = scale; }

  double forward_macs_per_sample() const override {
    return static_cast<double>(in_) * static_cast<double>(out_);
  }

  std::span<float> weights() { return storage_.span().subspan(0, in_ * out_); }
  std::span<float> bias() {
    return with_bias_ ? storage_.span().subspan(in_ * out_, out_)
                      : std::span<float>{};
  }

 private:
  std::size_t in_;
  std::size_t out_;
  bool with_bias_;
  float init_scale_ = 1.0f;
  Tensor storage_;       // [W | b] contiguous so params() is one span
  Tensor grad_storage_;  // same layout
  Tensor cached_input_;
};

}  // namespace marsit
