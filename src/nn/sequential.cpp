#include "nn/sequential.hpp"

#include <sstream>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace marsit {

void Sequential::add(std::unique_ptr<Layer> layer) {
  MARSIT_CHECK(layer != nullptr) << "null layer";
  if (!layers_.empty()) {
    MARSIT_CHECK(layer->in_size() == layers_.back()->out_size())
        << "layer " << layer->name() << " expects " << layer->in_size()
        << " inputs but previous layer " << layers_.back()->name()
        << " produces " << layers_.back()->out_size();
  }
  layers_.push_back(std::move(layer));
  activations_.emplace_back();
}

std::size_t Sequential::in_size() const {
  MARSIT_CHECK(!layers_.empty()) << "empty model";
  return layers_.front()->in_size();
}

std::size_t Sequential::out_size() const {
  MARSIT_CHECK(!layers_.empty()) << "empty model";
  return layers_.back()->out_size();
}

std::vector<Layer*> Sequential::leaves() const {
  std::vector<Layer*> result;
  for (const auto& layer : layers_) {
    if (auto* composite = dynamic_cast<CompositeLayer*>(layer.get())) {
      composite->collect_leaves(result);
    } else {
      result.push_back(layer.get());
    }
  }
  return result;
}

std::size_t Sequential::param_count() const {
  std::size_t total = 0;
  for (Layer* layer : leaves()) {
    total += layer->param_count();
  }
  return total;
}

void Sequential::init(Rng& rng) {
  for (Layer* layer : leaves()) {
    layer->init(rng);
  }
}

std::span<const float> Sequential::forward(std::span<const float> x,
                                           std::size_t batch) {
  MARSIT_CHECK(!layers_.empty()) << "forward through empty model";
  MARSIT_CHECK(x.size() == batch * in_size()) << "forward: input extent";
  last_batch_ = batch;
  std::span<const float> current = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const std::size_t out_elems = batch * layers_[i]->out_size();
    if (activations_[i].size() != out_elems) {
      activations_[i] = Tensor(out_elems);
    }
    layers_[i]->forward(current, batch, activations_[i].span());
    current = activations_[i].span();
  }
  return current;
}

void Sequential::backward(std::span<const float> dy, std::size_t batch) {
  MARSIT_CHECK(batch == last_batch_ && batch > 0)
      << "backward batch " << batch << " without matching forward";
  MARSIT_CHECK(dy.size() == batch * out_size()) << "backward: dy extent";

  // Two ping-pong scratch buffers sized to the largest interface.
  std::size_t max_elems = batch * in_size();
  for (const auto& layer : layers_) {
    max_elems = std::max(max_elems, batch * layer->out_size());
  }
  Tensor a(max_elems);
  Tensor b(max_elems);

  std::span<const float> current = dy;
  Tensor* next = &a;
  Tensor* spare = &b;
  for (std::size_t i = layers_.size(); i > 0; --i) {
    Layer& layer = *layers_[i - 1];
    auto dx = next->span().subspan(0, batch * layer.in_size());
    layer.backward(current, batch, dx);
    current = dx;
    std::swap(next, spare);
  }
}

void Sequential::zero_grads() {
  for (Layer* layer : leaves()) {
    layer->zero_grads();
  }
}

void Sequential::copy_grads_into(std::span<float> out) const {
  MARSIT_CHECK(out.size() == param_count()) << "grad buffer extent";
  std::size_t offset = 0;
  for (Layer* layer : leaves()) {
    auto g = layer->grads();
    copy_into(g, out.subspan(offset, g.size()));
    offset += g.size();
  }
}

void Sequential::copy_params_into(std::span<float> out) const {
  MARSIT_CHECK(out.size() == param_count()) << "param buffer extent";
  std::size_t offset = 0;
  for (Layer* layer : leaves()) {
    auto p = layer->params();
    copy_into(p, out.subspan(offset, p.size()));
    offset += p.size();
  }
}

void Sequential::load_params(std::span<const float> params) {
  MARSIT_CHECK(params.size() == param_count()) << "param buffer extent";
  std::size_t offset = 0;
  for (Layer* layer : leaves()) {
    auto p = layer->params();
    copy_into(params.subspan(offset, p.size()), p);
    offset += p.size();
  }
}

void Sequential::apply_update(std::span<const float> delta) {
  MARSIT_CHECK(delta.size() == param_count()) << "update extent";
  std::size_t offset = 0;
  for (Layer* layer : leaves()) {
    auto p = layer->params();
    axpy(-1.0f, delta.subspan(offset, p.size()), p);
    offset += p.size();
  }
}

std::string Sequential::describe() const {
  std::ostringstream out;
  out << "Sequential(" << param_count() << " params)\n";
  for (const auto& layer : layers_) {
    out << "  " << layer->name() << "  [" << layer->in_size() << " -> "
        << layer->out_size() << "]";
    if (layer->param_count() > 0) {
      out << "  " << layer->param_count() << " params";
    }
    out << '\n';
  }
  return out.str();
}

double Sequential::flops_per_sample() const {
  // Forward MACs are exact per layer; backward ≈ 2× forward (input grads +
  // weight grads); 2 flops per MAC.
  double macs = 0.0;
  for (Layer* layer : leaves()) {
    macs += layer->forward_macs_per_sample();
  }
  return 6.0 * macs;
}

}  // namespace marsit
