// Layer abstraction for the mini neural-network library.
//
// Layout conventions:
//  * activations are flat row-major float spans, batch-first: a layer with
//    per-sample input size I receives batch·I floats;
//  * forward() caches whatever it needs (usually its input) so the
//    immediately following backward() on the same batch can run;
//  * backward() writes dL/dx and *accumulates* parameter gradients (call
//    zero_grads() once per step before the batch).
//
// Each simulated worker owns a full model replica, so layers need no
// thread-safety: concurrency lives one level up (one replica per pool
// thread).
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "util/rng.hpp"

namespace marsit {

class Layer {
 public:
  virtual ~Layer() = default;

  virtual std::string name() const = 0;

  /// Per-sample input/output element counts.
  virtual std::size_t in_size() const = 0;
  virtual std::size_t out_size() const = 0;

  /// y = f(x); x has batch·in_size() elements, y batch·out_size().
  virtual void forward(std::span<const float> x, std::size_t batch,
                       std::span<float> y) = 0;

  /// dx = ∂L/∂x given dy = ∂L/∂y for the cached batch; accumulates parameter
  /// gradients.
  virtual void backward(std::span<const float> dy, std::size_t batch,
                        std::span<float> dx) = 0;

  /// Flat views of trainable parameters and their gradient accumulators
  /// (empty for parameter-free layers).  Extents always match.
  virtual std::span<float> params() { return {}; }
  virtual std::span<const float> params() const { return {}; }
  virtual std::span<float> grads() { return {}; }

  std::size_t param_count() const { return params().size(); }

  virtual void zero_grads();

  /// Draws initial parameter values (He/Xavier as appropriate); layers with
  /// no parameters ignore it.
  virtual void init(Rng& rng);

  /// Multiply-accumulate count of one forward pass on one sample (0 for
  /// cheap elementwise layers).  Feeds the simulated compute cost:
  /// forward+backward ≈ 3× forward, 2 flops per MAC.
  virtual double forward_macs_per_sample() const { return 0.0; }
};

}  // namespace marsit
