#include "nn/layer.hpp"

#include "tensor/ops.hpp"

namespace marsit {

void Layer::zero_grads() {
  auto g = grads();
  if (!g.empty()) {
    zero(g);
  }
}

void Layer::init(Rng& rng) { (void)rng; }

}  // namespace marsit
