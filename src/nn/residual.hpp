// Basic residual convolution block (He et al.): y = ReLU(F(x) + x) with
// F = conv3x3 → ReLU → conv3x3, shape-preserving.  The ResNetMini models
// (the paper's ResNet-20/18/50 stand-ins) stack these between downsampling
// convs.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "nn/conv.hpp"
#include "nn/sequential.hpp"
#include "tensor/tensor.hpp"

namespace marsit {

class ResidualConvBlock final : public CompositeLayer {
 public:
  explicit ResidualConvBlock(ImageDims dims);

  std::string name() const override;
  std::size_t in_size() const override { return dims_.size(); }
  std::size_t out_size() const override { return dims_.size(); }

  void forward(std::span<const float> x, std::size_t batch,
               std::span<float> y) override;
  void backward(std::span<const float> dy, std::size_t batch,
                std::span<float> dx) override;

  void collect_leaves(std::vector<Layer*>& out) override;

  void init(Rng& rng) override;
  void zero_grads() override;

  double forward_macs_per_sample() const override {
    return conv1_.forward_macs_per_sample() +
           conv2_.forward_macs_per_sample();
  }

 private:
  ImageDims dims_;
  Conv2d conv1_;
  Conv2d conv2_;
  Tensor mid_;        // conv1 output (pre-ReLU)
  Tensor mid_relu_;   // ReLU(conv1 output)
  Tensor body_out_;   // conv2 output
  Tensor out_mask_;   // final ReLU mask
  Tensor scratch_;    // backward intermediates
};

}  // namespace marsit
