// Worker-local optimizers.
//
// In the paper's setup every worker transforms its raw stochastic gradient
// with a local optimizer (Momentum for the image tasks, Adam for sentiment)
// before the synchronization framework aggregates the result (Algorithm 2
// feeds η_l·g into Marsit; the same pattern applies to the baselines).
// LocalOptimizer captures that: transform(grad) → update direction, keeping
// per-worker state (velocity / moments) across rounds.  The *global*
// stepsize is owned by the sync strategy / trainer, not here.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>

#include "ckpt/snapshot.hpp"
#include "tensor/tensor.hpp"

namespace marsit {

class LocalOptimizer {
 public:
  virtual ~LocalOptimizer() = default;
  virtual std::string name() const = 0;
  /// Writes the update direction for this round's gradient; `direction` may
  /// not alias `grad`.
  virtual void transform(std::span<const float> grad,
                         std::span<float> direction) = 0;
  virtual std::unique_ptr<LocalOptimizer> clone_fresh() const = 0;

  /// Checkpointing: serializes the cross-round state (velocity, moments,
  /// step counter) so a resumed run continues bit-identically.  Stateless
  /// optimizers write/read nothing.  load_state must be paired with the same
  /// optimizer kind that produced the bytes (the trainer checks names).
  virtual void save_state(ckpt::SnapshotWriter& writer) const;
  virtual void load_state(ckpt::SnapshotReader& reader);
};

/// Plain SGD: direction = grad.
class SgdOptimizer final : public LocalOptimizer {
 public:
  std::string name() const override { return "SGD"; }
  void transform(std::span<const float> grad,
                 std::span<float> direction) override;
  std::unique_ptr<LocalOptimizer> clone_fresh() const override;
};

/// Heavy-ball momentum: v ← μ·v + grad; direction = v.
class MomentumOptimizer final : public LocalOptimizer {
 public:
  explicit MomentumOptimizer(float mu = 0.9f);
  std::string name() const override { return "Momentum"; }
  void transform(std::span<const float> grad,
                 std::span<float> direction) override;
  std::unique_ptr<LocalOptimizer> clone_fresh() const override;
  void save_state(ckpt::SnapshotWriter& writer) const override;
  void load_state(ckpt::SnapshotReader& reader) override;

 private:
  float mu_;
  Tensor velocity_;
};

/// Adam with bias correction; direction = m̂ / (√v̂ + ε).
class AdamOptimizer final : public LocalOptimizer {
 public:
  AdamOptimizer(float beta1 = 0.9f, float beta2 = 0.999f,
                float epsilon = 1e-8f);
  std::string name() const override { return "Adam"; }
  void transform(std::span<const float> grad,
                 std::span<float> direction) override;
  std::unique_ptr<LocalOptimizer> clone_fresh() const override;
  void save_state(ckpt::SnapshotWriter& writer) const override;
  void load_state(ckpt::SnapshotReader& reader) override;

 private:
  float beta1_;
  float beta2_;
  float epsilon_;
  std::size_t step_ = 0;
  Tensor m_;
  Tensor v_;
};

enum class OptimizerKind { kSgd, kMomentum, kAdam };

std::unique_ptr<LocalOptimizer> make_optimizer(OptimizerKind kind);

}  // namespace marsit
