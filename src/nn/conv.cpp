#include "nn/conv.hpp"

#include <cmath>
#include <limits>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace marsit {

namespace {

std::size_t conv_extent(std::size_t in, std::size_t kernel,
                        std::size_t stride, std::size_t padding) {
  MARSIT_CHECK(in + 2 * padding >= kernel)
      << "kernel " << kernel << " larger than padded input "
      << in + 2 * padding;
  return (in + 2 * padding - kernel) / stride + 1;
}

}  // namespace

Conv2d::Conv2d(ImageDims in, std::size_t out_channels, std::size_t kernel,
               std::size_t stride, std::size_t padding)
    : in_(in),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weight_count_(out_channels * in.channels * kernel * kernel),
      storage_(weight_count_ + out_channels),
      grad_storage_(storage_.size()) {
  MARSIT_CHECK(in.channels > 0 && in.height > 0 && in.width > 0)
      << "degenerate conv input";
  MARSIT_CHECK(out_channels > 0 && kernel > 0 && stride > 0)
      << "degenerate conv geometry";
  (void)out_dims();  // validates kernel vs padded extent
}

ImageDims Conv2d::out_dims() const {
  return {out_channels_, conv_extent(in_.height, kernel_, stride_, padding_),
          conv_extent(in_.width, kernel_, stride_, padding_)};
}

std::string Conv2d::name() const {
  return "Conv2d(" + std::to_string(in_.channels) + "->" +
         std::to_string(out_channels_) + ",k" + std::to_string(kernel_) +
         ",s" + std::to_string(stride_) + ",p" + std::to_string(padding_) +
         ")";
}

void Conv2d::im2col(const float* x_n, float* cols) const {
  // cols is (Cin·k²) × (out.h·out.w): one ROW per patch component, one
  // COLUMN per output pixel, so the convolution is
  //   y(Cout × plane) = W(Cout × patch) · cols(patch × plane)
  // — a single GEMM per sample with the long `plane` axis innermost and the
  // result already in NCHW layout (no transposes anywhere).
  const ImageDims out = out_dims();
  const std::size_t in_plane = in_.height * in_.width;
  const std::size_t out_plane = out.height * out.width;
  std::size_t c = 0;
  for (std::size_t ic = 0; ic < in_.channels; ++ic) {
    const float* x_plane = x_n + ic * in_plane;
    for (std::size_t ky = 0; ky < kernel_; ++ky) {
      for (std::size_t kx = 0; kx < kernel_; ++kx, ++c) {
        float* row = cols + c * out_plane;
        for (std::size_t oy = 0; oy < out.height; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
              static_cast<std::ptrdiff_t>(padding_);
          float* out_row = row + oy * out.width;
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(in_.height)) {
            for (std::size_t ox = 0; ox < out.width; ++ox) {
              out_row[ox] = 0.0f;
            }
            continue;
          }
          const float* in_row =
              x_plane + static_cast<std::size_t>(iy) * in_.width;
          for (std::size_t ox = 0; ox < out.width; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                static_cast<std::ptrdiff_t>(padding_);
            out_row[ox] =
                (ix >= 0 && ix < static_cast<std::ptrdiff_t>(in_.width))
                    ? in_row[static_cast<std::size_t>(ix)]
                    : 0.0f;
          }
        }
      }
    }
  }
}

void Conv2d::col2im(const float* cols, float* dx_n) const {
  // Scatter-add the inverse of im2col (overlapping patches accumulate).
  const ImageDims out = out_dims();
  const std::size_t in_plane = in_.height * in_.width;
  const std::size_t out_plane = out.height * out.width;
  std::size_t c = 0;
  for (std::size_t ic = 0; ic < in_.channels; ++ic) {
    float* dx_plane = dx_n + ic * in_plane;
    for (std::size_t ky = 0; ky < kernel_; ++ky) {
      for (std::size_t kx = 0; kx < kernel_; ++kx, ++c) {
        const float* row = cols + c * out_plane;
        for (std::size_t oy = 0; oy < out.height; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
              static_cast<std::ptrdiff_t>(padding_);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(in_.height)) {
            continue;
          }
          float* dx_row = dx_plane + static_cast<std::size_t>(iy) * in_.width;
          const float* g_row = row + oy * out.width;
          for (std::size_t ox = 0; ox < out.width; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                static_cast<std::ptrdiff_t>(padding_);
            if (ix >= 0 && ix < static_cast<std::ptrdiff_t>(in_.width)) {
              dx_row[static_cast<std::size_t>(ix)] += g_row[ox];
            }
          }
        }
      }
    }
  }
}

void Conv2d::forward(std::span<const float> x, std::size_t batch,
                     std::span<float> y) {
  MARSIT_CHECK(x.size() == batch * in_size()) << "conv forward: x extent";
  MARSIT_CHECK(y.size() == batch * out_size()) << "conv forward: y extent";

  const ImageDims out = out_dims();
  const std::size_t out_plane = out.height * out.width;
  const std::size_t patch = in_.channels * kernel_ * kernel_;

  // Cache the im2col image: backward reuses it for the weight gradient.
  if (cached_cols_.size() != batch * out_plane * patch) {
    cached_cols_ = Tensor(batch * out_plane * patch);
  }
  cached_batch_ = batch;

  const auto w = weights();
  const auto b = bias();
  for (std::size_t n = 0; n < batch; ++n) {
    float* cols = cached_cols_.data() + n * out_plane * patch;
    im2col(x.data() + n * in_size(), cols);
    float* y_n = y.data() + n * out_size();
    // y(Cout × plane) = W(Cout × patch) · cols(patch × plane).
    matmul(w, {cols, patch * out_plane}, {y_n, out_size()}, out_channels_,
           patch, out_plane);
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      float* y_plane = y_n + oc * out_plane;
      const float bias_oc = b[oc];
      for (std::size_t p = 0; p < out_plane; ++p) {
        y_plane[p] += bias_oc;
      }
    }
  }
}

void Conv2d::backward(std::span<const float> dy, std::size_t batch,
                      std::span<float> dx) {
  MARSIT_CHECK(dy.size() == batch * out_size()) << "conv backward: dy extent";
  MARSIT_CHECK(dx.size() == batch * in_size()) << "conv backward: dx extent";
  MARSIT_CHECK(cached_batch_ == batch && !cached_cols_.empty())
      << "conv backward without matching forward";

  const ImageDims out = out_dims();
  const std::size_t out_plane = out.height * out.width;
  const std::size_t patch = in_.channels * kernel_ * kernel_;

  const auto w = weights();
  auto dw = grad_storage_.span().subspan(0, weight_count_);
  auto db = grad_storage_.span().subspan(weight_count_, out_channels_);

  std::vector<float> dcols(patch * out_plane);
  zero(dx);
  for (std::size_t n = 0; n < batch; ++n) {
    const float* dy_n = dy.data() + n * out_size();
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      const float* dy_plane = dy_n + oc * out_plane;
      double bias_acc = 0.0;
      for (std::size_t p = 0; p < out_plane; ++p) {
        bias_acc += dy_plane[p];
      }
      db[oc] += static_cast<float>(bias_acc);
    }

    const float* cols = cached_cols_.data() + n * out_plane * patch;
    // dW(Cout × patch) += dy(Cout × plane) · cols(patch × plane)ᵀ.
    matmul_a_bt({dy_n, out_size()}, {cols, patch * out_plane}, dw,
                out_channels_, out_plane, patch, /*beta=*/1.0f);
    // dcols(patch × plane) = Wᵀ(patch × Cout) · dy(Cout × plane).
    matmul_at_b(w, {dy_n, out_size()}, {dcols.data(), dcols.size()}, patch,
                out_channels_, out_plane);
    col2im(dcols.data(), dx.data() + n * in_size());
  }
}

void Conv2d::init(Rng& rng) {
  const std::size_t fan_in = in_.channels * kernel_ * kernel_;
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  fill_normal(weights(), rng, 0.0f, stddev);
  zero(bias());
  grad_storage_.zero();
}

MaxPool2d::MaxPool2d(ImageDims in, std::size_t kernel, std::size_t stride)
    : in_(in), kernel_(kernel), stride_(stride == 0 ? kernel : stride) {
  MARSIT_CHECK(kernel_ > 0) << "degenerate pool kernel";
  (void)out_dims();
}

ImageDims MaxPool2d::out_dims() const {
  return {in_.channels, conv_extent(in_.height, kernel_, stride_, 0),
          conv_extent(in_.width, kernel_, stride_, 0)};
}

std::string MaxPool2d::name() const {
  return "MaxPool2d(k" + std::to_string(kernel_) + ",s" +
         std::to_string(stride_) + ")";
}

void MaxPool2d::forward(std::span<const float> x, std::size_t batch,
                        std::span<float> y) {
  MARSIT_CHECK(x.size() == batch * in_size()) << "pool forward: x extent";
  MARSIT_CHECK(y.size() == batch * out_size()) << "pool forward: y extent";
  const ImageDims out = out_dims();
  const std::size_t in_plane = in_.height * in_.width;
  const std::size_t out_plane = out.height * out.width;
  argmax_.assign(y.size(), 0);

  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < in_.channels; ++c) {
      const float* x_plane = x.data() + n * in_size() + c * in_plane;
      float* y_plane = y.data() + n * out_size() + c * out_plane;
      std::size_t* arg_plane =
          argmax_.data() + n * out_size() + c * out_plane;
      for (std::size_t oy = 0; oy < out.height; ++oy) {
        for (std::size_t ox = 0; ox < out.width; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_index = 0;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            const std::size_t iy = oy * stride_ + ky;
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              const std::size_t ix = ox * stride_ + kx;
              const std::size_t xi = iy * in_.width + ix;
              if (x_plane[xi] > best) {
                best = x_plane[xi];
                best_index = xi;
              }
            }
          }
          y_plane[oy * out.width + ox] = best;
          arg_plane[oy * out.width + ox] = best_index;
        }
      }
    }
  }
}

void MaxPool2d::backward(std::span<const float> dy, std::size_t batch,
                         std::span<float> dx) {
  MARSIT_CHECK(dy.size() == batch * out_size()) << "pool backward: dy extent";
  MARSIT_CHECK(dx.size() == batch * in_size()) << "pool backward: dx extent";
  MARSIT_CHECK(argmax_.size() == dy.size())
      << "pool backward without matching forward";
  const ImageDims out = out_dims();
  const std::size_t in_plane = in_.height * in_.width;
  const std::size_t out_plane = out.height * out.width;

  zero(dx);
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < in_.channels; ++c) {
      const float* dy_plane = dy.data() + n * out_size() + c * out_plane;
      float* dx_plane = dx.data() + n * in_size() + c * in_plane;
      const std::size_t* arg_plane =
          argmax_.data() + n * out_size() + c * out_plane;
      for (std::size_t i = 0; i < out_plane; ++i) {
        dx_plane[arg_plane[i]] += dy_plane[i];
      }
    }
  }
}

GlobalAvgPool::GlobalAvgPool(ImageDims in) : in_(in) {
  MARSIT_CHECK(in_.size() > 0) << "degenerate global pool";
}

void GlobalAvgPool::forward(std::span<const float> x, std::size_t batch,
                            std::span<float> y) {
  MARSIT_CHECK(x.size() == batch * in_size()) << "gap forward: x extent";
  MARSIT_CHECK(y.size() == batch * in_.channels) << "gap forward: y extent";
  const std::size_t plane = in_.height * in_.width;
  const float inv = 1.0f / static_cast<float>(plane);
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < in_.channels; ++c) {
      y[n * in_.channels + c] =
          sum(x.subspan(n * in_size() + c * plane, plane)) * inv;
    }
  }
}

void GlobalAvgPool::backward(std::span<const float> dy, std::size_t batch,
                             std::span<float> dx) {
  MARSIT_CHECK(dy.size() == batch * in_.channels) << "gap backward: dy extent";
  MARSIT_CHECK(dx.size() == batch * in_size()) << "gap backward: dx extent";
  const std::size_t plane = in_.height * in_.width;
  const float inv = 1.0f / static_cast<float>(plane);
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < in_.channels; ++c) {
      const float g = dy[n * in_.channels + c] * inv;
      auto slice = dx.subspan(n * in_size() + c * plane, plane);
      fill(slice, g);
    }
  }
}

}  // namespace marsit
