// Sequential model container: owns a layer stack, runs forward/backward,
// and exposes the flattened parameter/gradient vector that the
// synchronization strategies operate on.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/layer.hpp"
#include "tensor/tensor.hpp"

namespace marsit {

/// A layer that contains other layers advertises them through this hook so
/// Sequential can reach every parameter-bearing leaf (used by
/// ResidualConvBlock).
class CompositeLayer : public Layer {
 public:
  virtual void collect_leaves(std::vector<Layer*>& out) = 0;
};

class Sequential {
 public:
  Sequential() = default;
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  /// Appends a layer; its in_size must match the current out_size.
  void add(std::unique_ptr<Layer> layer);

  std::size_t num_layers() const { return layers_.size(); }
  std::size_t in_size() const;
  std::size_t out_size() const;

  /// Total trainable parameter count D — the gradient dimension every
  /// synchronization strategy sees.
  std::size_t param_count() const;

  /// Initializes every layer from one RNG (replicas constructed with the
  /// same seed are bit-identical — the consistent-replica invariant).
  void init(Rng& rng);

  /// Forward pass; returns the output activations (batch × out_size),
  /// valid until the next forward call.
  std::span<const float> forward(std::span<const float> x, std::size_t batch);

  /// Backward from dL/d(output); parameter gradients accumulate in the
  /// layers.  Must follow a forward() with the same batch.
  void backward(std::span<const float> dy, std::size_t batch);

  void zero_grads();

  /// Serializes all parameter gradients into `out` (extent = param_count()).
  void copy_grads_into(std::span<float> out) const;

  /// Serializes all parameters into `out`.
  void copy_params_into(std::span<float> out) const;

  /// Loads parameters from a flat vector (inverse of copy_params_into).
  void load_params(std::span<const float> params);

  /// Applies the global update: params ← params − delta.
  void apply_update(std::span<const float> delta);

  /// Multi-line human-readable structure summary.
  std::string describe() const;

  /// Estimated flops of one forward+backward pass per sample — feeds the
  /// compute term of the simulated cost model (≈ 6 flops per weight per
  /// sample, the standard estimate).
  double flops_per_sample() const;

 private:
  std::vector<Layer*> leaves() const;

  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<Tensor> activations_;   // per-layer outputs
  Tensor input_grad_;                 // scratch for the deepest dx
  std::size_t last_batch_ = 0;
};

}  // namespace marsit
