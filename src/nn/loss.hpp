// Softmax cross-entropy over integer class labels — the loss of every task
// in the paper's evaluation (image classification and binary sentiment).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace marsit {

struct LossResult {
  double loss = 0.0;        // mean over the batch
  std::size_t correct = 0;  // top-1 hits in the batch
};

/// Computes mean cross-entropy of `logits` (batch × classes) against
/// `labels` and writes dL/dlogits (softmax − onehot, already divided by the
/// batch size) into `dlogits`.  Numerically stabilized by max-shift.
LossResult softmax_cross_entropy(std::span<const float> logits,
                                 std::span<const std::size_t> labels,
                                 std::size_t num_classes,
                                 std::span<float> dlogits);

/// Evaluation-only variant (no gradient buffer).
LossResult softmax_cross_entropy_eval(std::span<const float> logits,
                                      std::span<const std::size_t> labels,
                                      std::size_t num_classes);

}  // namespace marsit
