#include "nn/embedding.hpp"

#include <cmath>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace marsit {

Embedding::Embedding(std::size_t vocab_size, std::size_t dim,
                     std::size_t seq_len)
    : vocab_(vocab_size),
      dim_(dim),
      seq_len_(seq_len),
      table_(vocab_size * dim),
      grad_(vocab_size * dim) {
  MARSIT_CHECK(vocab_ > 0 && dim_ > 0 && seq_len_ > 0)
      << "degenerate embedding";
}

std::string Embedding::name() const {
  return "Embedding(" + std::to_string(vocab_) + "x" + std::to_string(dim_) +
         ")";
}

void Embedding::forward(std::span<const float> x, std::size_t batch,
                        std::span<float> y) {
  MARSIT_CHECK(x.size() == batch * seq_len_) << "embedding forward: x extent";
  MARSIT_CHECK(y.size() == batch * seq_len_ * dim_)
      << "embedding forward: y extent";
  cached_ids_.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const auto id = static_cast<std::size_t>(x[i]);
    MARSIT_CHECK(x[i] >= 0.0f && id < vocab_)
        << "token id " << x[i] << " outside vocab " << vocab_;
    cached_ids_[i] = id;
    copy_into(table_.span().subspan(id * dim_, dim_),
              y.subspan(i * dim_, dim_));
  }
}

void Embedding::backward(std::span<const float> dy, std::size_t batch,
                         std::span<float> dx) {
  MARSIT_CHECK(dy.size() == batch * seq_len_ * dim_)
      << "embedding backward: dy extent";
  MARSIT_CHECK(dx.size() == batch * seq_len_)
      << "embedding backward: dx extent";
  MARSIT_CHECK(cached_ids_.size() == dx.size())
      << "embedding backward without matching forward";
  zero(dx);  // ids carry no gradient
  for (std::size_t i = 0; i < cached_ids_.size(); ++i) {
    axpy(1.0f, dy.subspan(i * dim_, dim_),
         grad_.span().subspan(cached_ids_[i] * dim_, dim_));
  }
}

void Embedding::init(Rng& rng) {
  fill_normal(table_.span(), rng, 0.0f,
              1.0f / std::sqrt(static_cast<float>(dim_)));
  grad_.zero();
}

MeanPool::MeanPool(std::size_t seq_len, std::size_t dim)
    : seq_len_(seq_len), dim_(dim) {
  MARSIT_CHECK(seq_len_ > 0 && dim_ > 0) << "degenerate mean pool";
}

void MeanPool::forward(std::span<const float> x, std::size_t batch,
                       std::span<float> y) {
  MARSIT_CHECK(x.size() == batch * in_size()) << "meanpool forward: x extent";
  MARSIT_CHECK(y.size() == batch * dim_) << "meanpool forward: y extent";
  const float inv = 1.0f / static_cast<float>(seq_len_);
  zero(y);
  for (std::size_t n = 0; n < batch; ++n) {
    auto out = y.subspan(n * dim_, dim_);
    for (std::size_t t = 0; t < seq_len_; ++t) {
      axpy(inv, x.subspan(n * in_size() + t * dim_, dim_), out);
    }
  }
}

void MeanPool::backward(std::span<const float> dy, std::size_t batch,
                        std::span<float> dx) {
  MARSIT_CHECK(dy.size() == batch * dim_) << "meanpool backward: dy extent";
  MARSIT_CHECK(dx.size() == batch * in_size())
      << "meanpool backward: dx extent";
  const float inv = 1.0f / static_cast<float>(seq_len_);
  for (std::size_t n = 0; n < batch; ++n) {
    auto g = dy.subspan(n * dim_, dim_);
    for (std::size_t t = 0; t < seq_len_; ++t) {
      auto slice = dx.subspan(n * in_size() + t * dim_, dim_);
      for (std::size_t i = 0; i < dim_; ++i) {
        slice[i] = g[i] * inv;
      }
    }
  }
}

}  // namespace marsit
