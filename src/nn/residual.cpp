#include "nn/residual.hpp"

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace marsit {

ResidualConvBlock::ResidualConvBlock(ImageDims dims)
    : dims_(dims),
      conv1_(dims, dims.channels, /*kernel=*/3, /*stride=*/1, /*padding=*/1),
      conv2_(dims, dims.channels, /*kernel=*/3, /*stride=*/1, /*padding=*/1) {
  MARSIT_CHECK(conv1_.out_size() == dims_.size())
      << "residual body must preserve shape";
}

std::string ResidualConvBlock::name() const {
  return "ResidualBlock(" + std::to_string(dims_.channels) + "x" +
         std::to_string(dims_.height) + "x" + std::to_string(dims_.width) +
         ")";
}

void ResidualConvBlock::forward(std::span<const float> x, std::size_t batch,
                                std::span<float> y) {
  const std::size_t elems = batch * dims_.size();
  MARSIT_CHECK(x.size() == elems && y.size() == elems)
      << "residual forward extent mismatch";
  if (mid_.size() != elems) {
    mid_ = Tensor(elems);
    mid_relu_ = Tensor(elems);
    body_out_ = Tensor(elems);
    out_mask_ = Tensor(elems);
  }

  conv1_.forward(x, batch, mid_.span());
  auto mid = mid_.span();
  auto mid_relu = mid_relu_.span();
  for (std::size_t i = 0; i < elems; ++i) {
    mid_relu[i] = mid[i] > 0.0f ? mid[i] : 0.0f;
  }
  conv2_.forward(mid_relu, batch, body_out_.span());

  auto body = body_out_.span();
  auto mask = out_mask_.span();
  for (std::size_t i = 0; i < elems; ++i) {
    const float pre = body[i] + x[i];
    const bool active = pre > 0.0f;
    mask[i] = active ? 1.0f : 0.0f;
    y[i] = active ? pre : 0.0f;
  }
}

void ResidualConvBlock::backward(std::span<const float> dy, std::size_t batch,
                                 std::span<float> dx) {
  const std::size_t elems = batch * dims_.size();
  MARSIT_CHECK(dy.size() == elems && dx.size() == elems)
      << "residual backward extent mismatch";
  MARSIT_CHECK(out_mask_.size() == elems)
      << "residual backward without matching forward";
  if (scratch_.size() != 2 * elems) {
    scratch_ = Tensor(2 * elems);
  }
  auto d_pre = scratch_.span().subspan(0, elems);      // d(body + x)
  auto d_mid = scratch_.span().subspan(elems, elems);  // grads through body

  hadamard(dy, out_mask_.span(), d_pre);

  // Body branch: conv2 backward → ReLU mask on mid → conv1 backward.
  conv2_.backward(d_pre, batch, d_mid);
  auto mid = mid_.span();
  for (std::size_t i = 0; i < elems; ++i) {
    if (mid[i] <= 0.0f) {
      d_mid[i] = 0.0f;
    }
  }
  conv1_.backward(d_mid, batch, dx);

  // Skip branch adds d_pre directly.
  axpy(1.0f, d_pre, dx);
}

void ResidualConvBlock::collect_leaves(std::vector<Layer*>& out) {
  out.push_back(&conv1_);
  out.push_back(&conv2_);
}

void ResidualConvBlock::init(Rng& rng) {
  conv1_.init(rng);
  // Fixup-style initialization: the block's second conv starts at zero so
  // the block is the identity at initialization.  Without normalization
  // layers, He-initialized residual stacks amplify activations by ~√2 per
  // block and diverge within a few steps; zero-initialized branches keep
  // the forward signal bounded at any depth.
  conv2_.init(rng);
  zero(conv2_.params());
}

void ResidualConvBlock::zero_grads() {
  conv1_.zero_grads();
  conv2_.zero_grads();
}

}  // namespace marsit
