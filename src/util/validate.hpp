// Debug-build contract validation for the synchronization pipeline.
//
// MARSIT_CHECK (check.hpp) guards API boundaries and is always on.  The
// contracts here are the *algorithmic* invariants of the paper's Eq. 2
// pipeline — ⊙ fold weights, take-probability tables, shard-grid coverage,
// post-degradation membership — which sit on hot paths where an always-on
// check would tax every round.  They compile to nothing unless the build
// defines MARSIT_VALIDATE_BUILD (CMake: -DMARSIT_VALIDATE=ON), and when
// enabled they must stay *observationally pure*: no RNG draws, no writes to
// anything the pipeline reads, so a validate build produces bit-identical
// golden digests to a plain Release build.
//
// Two forms:
//
//   MARSIT_VALIDATE(i < n) << "optional streamed detail";
//     Expression contract.  In validate builds a failure throws
//     marsit::ValidateError; otherwise the expression is type-checked but
//     never evaluated (short-circuited constant fold, zero codegen).
//
//   MARSIT_VALIDATE_CALL(validate::membership(active, world));
//     Statement contract for the checker functions below.  The statement is
//     discarded entirely outside validate builds.
//
// The checker functions themselves are always compiled and exported (tests
// exercise them in every build mode); only the *call sites* are gated.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <sstream>
#include <string>

#include "util/check.hpp"

#ifdef MARSIT_VALIDATE_BUILD
#define MARSIT_VALIDATE_ENABLED 1
#else
#define MARSIT_VALIDATE_ENABLED 0
#endif

namespace marsit {

/// Thrown when a MARSIT_VALIDATE contract fails.  Derives from CheckError so
/// existing catch sites treat a contract violation like any failed check.
class ValidateError : public CheckError {
 public:
  explicit ValidateError(const std::string& what) : CheckError(what) {}
};

namespace detail {

/// Builds and throws the ValidateError for a failed contract; out-of-line so
/// every call site contributes only the streamed-message slow path.
[[noreturn]] void throw_validate_error(const char* expr, const char* file,
                                       int line, const std::string& msg);

/// Accumulates the optional streamed message of a MARSIT_VALIDATE.  Only
/// instantiated on the failure path.
class ValidateMessageBuilder {
 public:
  ValidateMessageBuilder(const char* expr, const char* file, int line)
      : expr_(expr), file_(file), line_(line) {}

  template <typename T>
  ValidateMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] void fail() const {
    throw_validate_error(expr_, file_, line_, stream_.str());
  }

 private:
  const char* expr_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Turns the builder expression into a [[noreturn]] statement (same shape as
/// CheckFailTrigger so the two macros read identically).
struct ValidateFailTrigger {
  [[noreturn]] void operator&(const ValidateMessageBuilder& builder) const {
    builder.fail();
  }
};

}  // namespace detail

namespace validate {

/// Throws ValidateError for a named contract; the checkers below funnel
/// through this so their messages share one format.
[[noreturn]] void fail(const char* contract, const std::string& detail);

/// ⊙ fold weights: both aggregates must carry at least one worker (the hop
/// index m of Eq. 2 is >= 1) and their sum must not wrap.
void hop_weights(std::size_t weight_a, std::size_t weight_b);

/// A single probability: finite and within [0, 1].
void probability(double p, const char* what);

/// A discrete distribution: every entry in [0, 1] and the total within
/// `tolerance` of 1.  The ⊙ operator's take-probability pair
/// (m/(m+1), 1/(m+1)) is the canonical caller.
void probability_table(std::span<const double> table, const char* what,
                       double tolerance = 1e-9);

/// Post-degradation membership: strictly increasing worker ids, all within
/// [0, num_workers), and at least quorum (2) of them — what the re-formed
/// ring/torus/tree paradigms assume of active_workers().
void membership(std::span<const std::size_t> members, std::size_t num_workers);

/// A (re-formed) torus shape: rows and cols both >= 2 and tiling exactly
/// `num_workers` members.
void torus_shape(std::size_t rows, std::size_t cols, std::size_t num_workers);

/// Snapshot header consistency at a restore site: the format version is one
/// this build supports, the payload digest matches the recomputed one, and
/// the declared shape is trainable (non-empty model, quorum-sized fleet).
void snapshot_header(std::uint32_t version, std::uint32_t supported_version,
                     std::uint64_t declared_digest,
                     std::uint64_t actual_digest, std::uint64_t param_count,
                     std::uint64_t num_workers);

/// Rejoin re-admission: every rejoining worker is a configured worker, the
/// set is strictly increasing, and — when a flush period gates the rejoin —
/// re-admission happens only at a full-precision flush boundary
/// (round % flush_period == 0), the consistency barrier where no per-worker
/// history is needed.
void rejoin_membership(std::span<const std::size_t> rejoined,
                       std::size_t num_workers, std::size_t round,
                       std::size_t flush_period);

}  // namespace validate
}  // namespace marsit

#if MARSIT_VALIDATE_ENABLED

#define MARSIT_VALIDATE(expr)                                                \
  if (expr) {                                                                \
  } else                                                                     \
    ::marsit::detail::ValidateFailTrigger{} &                                \
        ::marsit::detail::ValidateMessageBuilder(#expr, __FILE__, __LINE__)

#define MARSIT_VALIDATE_CALL(...) \
  do {                            \
    __VA_ARGS__;                  \
  } while (false)

#else  // !MARSIT_VALIDATE_ENABLED

// `true || (expr)` keeps the contract expression type-checked while the
// short-circuit guarantees it is never evaluated; the dead else branch (and
// its streamed operands) fold away entirely.
#define MARSIT_VALIDATE(expr)                                                \
  if (true || static_cast<bool>(expr)) {                                     \
  } else                                                                     \
    ::marsit::detail::ValidateFailTrigger{} &                                \
        ::marsit::detail::ValidateMessageBuilder(#expr, __FILE__, __LINE__)

#define MARSIT_VALIDATE_CALL(...) \
  do {                            \
  } while (false)

#endif  // MARSIT_VALIDATE_ENABLED
