// Error-handling primitives used across all marsit libraries.
//
// MARSIT_CHECK is an always-on invariant check for API boundaries: it throws
// marsit::CheckError with the failing expression, location, and an optional
// formatted message.  Internal hot-loop invariants use assert() instead so
// release builds pay nothing for them.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace marsit {

/// Thrown when a MARSIT_CHECK invariant fails.  Deriving from
/// std::logic_error: a failed check is a programming error, not an
/// environmental condition.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

/// Builds the exception message for a failed check.  Out-of-line so the
/// failure path adds minimal code at every check site.
[[noreturn]] void throw_check_error(const char* expr, const char* file,
                                    int line, const std::string& msg);

/// Accumulates the optional streamed message of a MARSIT_CHECK.  The
/// operator<< chain is only evaluated on the failure path.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* expr, const char* file, int line)
      : expr_(expr), file_(file), line_(line) {}

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] void fail() const {
    throw_check_error(expr_, file_, line_, stream_.str());
  }

 private:
  const char* expr_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace marsit

/// Always-on invariant check.  Usage:
///   MARSIT_CHECK(i < size()) << "index " << i << " out of range";
/// The streamed message is optional and only evaluated when the check fails.
#define MARSIT_CHECK(expr)                                                   \
  if (expr) {                                                                \
  } else                                                                     \
    ::marsit::detail::CheckFailTrigger{} &                                   \
        ::marsit::detail::CheckMessageBuilder(#expr, __FILE__, __LINE__)

namespace marsit::detail {

/// Helper that turns the builder expression into a [[noreturn]] statement.
struct CheckFailTrigger {
  [[noreturn]] void operator&(const CheckMessageBuilder& builder) const {
    builder.fail();
  }
};

}  // namespace marsit::detail
