// Minimal leveled logging.  The training simulator emits progress at Info,
// the collectives emit per-hop traces at Debug (off by default), and the
// test binaries silence everything below Warning.
#pragma once

#include <sstream>
#include <string>

namespace marsit {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level.  Not thread-synchronized by design: it is set
/// once at startup before worker threads exist.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {

/// Collects one log record and emits it (with level tag and monotonic
/// timestamp) to stderr on destruction.  Emission of a whole record is
/// serialized under a mutex so concurrent workers don't interleave lines.
class LogRecord {
 public:
  explicit LogRecord(LogLevel level) : level_(level) {}
  LogRecord(const LogRecord&) = delete;
  LogRecord& operator=(const LogRecord&) = delete;
  ~LogRecord();

  template <typename T>
  LogRecord& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace marsit

#define MARSIT_LOG(level)                                  \
  if (::marsit::LogLevel::level < ::marsit::log_level()) { \
  } else                                                   \
    ::marsit::detail::LogRecord(::marsit::LogLevel::level)
