// Small online statistics helpers used by tests (distribution checks on the
// stochastic compressors) and by the benchmark harness (mean ± stddev rows).
#pragma once

#include <cstddef>
#include <vector>

namespace marsit {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile (linear interpolation) of a sample set.  `q` in [0,1].
double percentile(std::vector<double> samples, double q);

/// Two-sided binomial z-score of observing `successes` out of `trials` under
/// success probability `p`; tests use |z| thresholds to validate Bernoulli
/// machinery without flakiness.
double binomial_z_score(std::size_t successes, std::size_t trials, double p);

/// Upper regularized incomplete gamma Q(a, x) = Γ(a, x)/Γ(a) for a > 0,
/// x ≥ 0 — series expansion below x < a+1, continued fraction above.
double upper_regularized_gamma(double a, double x);

/// Upper-tail p-value of a chi-square statistic with `dof` degrees of
/// freedom: P(X² ≥ statistic) = Q(dof/2, statistic/2).  The statistical
/// tests reject at tiny thresholds (e.g. p < 1e-7) so seeded runs never
/// flake.
double chi_square_p_value(double statistic, std::size_t dof);

/// Pearson chi-square goodness-of-fit statistic of observed counts against
/// expected counts (same length, every expected count positive).
double chi_square_statistic(const std::vector<std::size_t>& observed,
                            const std::vector<double>& expected);

}  // namespace marsit
