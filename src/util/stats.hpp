// Small online statistics helpers used by tests (distribution checks on the
// stochastic compressors) and by the benchmark harness (mean ± stddev rows).
#pragma once

#include <cstddef>
#include <vector>

namespace marsit {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile (linear interpolation) of a sample set.  `q` in [0,1].
double percentile(std::vector<double> samples, double q);

/// Two-sided binomial z-score of observing `successes` out of `trials` under
/// success probability `p`; tests use |z| thresholds to validate Bernoulli
/// machinery without flakiness.
double binomial_z_score(std::size_t successes, std::size_t trials, double p);

}  // namespace marsit
