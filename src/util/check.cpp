#include "util/check.hpp"

namespace marsit::detail {

void throw_check_error(const char* expr, const char* file, int line,
                       const std::string& msg) {
  std::ostringstream out;
  out << "MARSIT_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) {
    out << " — " << msg;
  }
  throw CheckError(out.str());
}

}  // namespace marsit::detail
