// Plain-text table formatting for the benchmark harness.  Every bench binary
// that reproduces a paper table/figure prints its rows through TextTable so
// the output is aligned, diffable, and optionally written as CSV for
// downstream plotting.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace marsit {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  std::size_t num_rows() const { return rows_.size(); }

  /// Renders with aligned columns, a header underline, and 2-space gutters.
  void print(std::ostream& out) const;

  /// Renders as RFC-4180-ish CSV (values containing commas/quotes quoted).
  void print_csv(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision float formatting ("12.34"); benches use it so table cells
/// are stable across libstdc++ versions.
std::string format_fixed(double value, int decimals);

/// Scientific notation ("3.8e+22") for quantities spanning many decades
/// (e.g. the cascading-compression deviation of Theorem 3).
std::string format_scientific(double value, int decimals = 2);

/// Human-readable byte/bit counts: "1.5 GB", "312 MB", "8.0 Kb"...
std::string format_bytes(double bytes);

/// Seconds to "12.3 s" / "4.1 min" / "710 ms" as magnitude dictates.
std::string format_duration(double seconds);

}  // namespace marsit
