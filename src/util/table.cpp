#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "util/check.hpp"

namespace marsit {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  MARSIT_CHECK(!header_.empty()) << "table needs at least one column";
}

void TextTable::add_row(std::vector<std::string> row) {
  MARSIT_CHECK(row.size() == header_.size())
      << "row arity " << row.size() << " != header arity " << header_.size();
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void TextTable::print_csv(std::ostream& out) const {
  auto quote = [](const std::string& value) -> std::string {
    if (value.find_first_of(",\"\n") == std::string::npos) {
      return value;
    }
    std::string quoted = "\"";
    for (char ch : value) {
      if (ch == '"') {
        quoted += '"';
      }
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << quote(row[c]);
      if (c + 1 < row.size()) {
        out << ',';
      }
    }
    out << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string format_fixed(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string format_scientific(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*e", decimals, value);
  return buffer;
}

std::string format_bytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  const int decimals = unit == 0 ? 0 : (bytes < 10 ? 2 : 1);
  return format_fixed(bytes, decimals) + " " + units[unit];
}

std::string format_duration(double seconds) {
  if (seconds < 1e-3) {
    return format_fixed(seconds * 1e6, 1) + " us";
  }
  if (seconds < 1.0) {
    return format_fixed(seconds * 1e3, 1) + " ms";
  }
  if (seconds < 120.0) {
    return format_fixed(seconds, 2) + " s";
  }
  return format_fixed(seconds / 60.0, 2) + " min";
}

}  // namespace marsit
