// Clang -Wthread-safety annotations and the annotated lock vocabulary the
// threaded layers are written in (DESIGN.md §15).
//
// Clang's thread-safety analysis proves, at compile time, that every access
// to a `MARSIT_GUARDED_BY(mu)` member happens with `mu` held — which is
// exactly the class of bug the socket teardown race of PR 8 was (state
// touched between a mailbox push and an ack under the wrong interleaving).
// The analysis only understands *capability* types, and libstdc++'s
// std::mutex carries no capability attribute, so annotating members with a
// raw std::mutex would be inert.  This header therefore provides:
//
//   * the MARSIT_* attribute macros (no-ops on compilers without the
//     attributes, so gcc builds are unaffected);
//   * marsit::Mutex — std::mutex wrapped as a MARSIT_CAPABILITY;
//   * marsit::MutexLock — the scoped holder (MARSIT_SCOPED_CAPABILITY) with
//     annotated unlock()/lock() for wait-loop hand-off patterns;
//   * marsit::CondVar — std::condition_variable_any over marsit::Mutex whose
//     wait() requires the mutex and *requires a predicate* (the R6 lint rule
//     bans predicate-less waits; this API cannot express one).
//
// Every mutex-protected structure in src/ uses these types; CI builds src/
// with clang and -Werror=thread-safety so a guarded member touched without
// its mutex is a build break, not a TSan roll of the dice.
//
// This is the one file in src/ allowed to call raw mutex lock()/unlock():
// the linter's R6 lock-discipline rule exempts it by path and flags raw
// calls everywhere else.
#pragma once

#include <condition_variable>
#include <mutex>
#include <utility>

// Attribute detection: clang defines the thread-safety attributes behind
// __has_attribute; everything else compiles the macros away.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define MARSIT_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef MARSIT_THREAD_ANNOTATION
#define MARSIT_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Declares a type to be a capability (lockable) the analysis tracks.
#define MARSIT_CAPABILITY(x) MARSIT_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability at construction and
/// releases it at destruction.
#define MARSIT_SCOPED_CAPABILITY MARSIT_THREAD_ANNOTATION(scoped_lockable)

/// Member data that may only be touched while `x` is held.
#define MARSIT_GUARDED_BY(x) MARSIT_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* may only be touched while `x` is held.
#define MARSIT_PT_GUARDED_BY(x) MARSIT_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the named capabilities and does not release them.
#define MARSIT_ACQUIRE(...) \
  MARSIT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the named capabilities (or, on a scoped capability
/// with no argument, whatever the scope holds).
#define MARSIT_RELEASE(...) \
  MARSIT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability only when returning the given value:
/// MARSIT_TRY_ACQUIRE(true) or MARSIT_TRY_ACQUIRE(true, mu).
#define MARSIT_TRY_ACQUIRE(...) \
  MARSIT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must hold the named capabilities to call this function.
#define MARSIT_REQUIRES(...) \
  MARSIT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the named capabilities (deadlock prevention).
#define MARSIT_EXCLUDES(...) MARSIT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define MARSIT_RETURN_CAPABILITY(x) MARSIT_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function body is not analyzed.  Reserve for code the
/// analysis cannot model; pair with a comment saying why.
#define MARSIT_NO_THREAD_SAFETY_ANALYSIS \
  MARSIT_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace marsit {

/// std::mutex as a clang capability.  Satisfies BasicLockable, so it also
/// works as the Lockable of CondVar's condition_variable_any.
class MARSIT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MARSIT_ACQUIRE() { raw_.lock(); }
  void unlock() MARSIT_RELEASE() { raw_.unlock(); }
  bool try_lock() MARSIT_TRY_ACQUIRE(true) { return raw_.try_lock(); }

 private:
  std::mutex raw_;
};

/// Scoped holder for Mutex — the project's lock_guard *and* unique_lock.
/// Constructed holding; unlock()/lock() support the wait-loop hand-off
/// pattern (release around a long computation, reacquire to publish), and
/// the destructor releases only if still held.
class MARSIT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) MARSIT_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() MARSIT_RELEASE() {
    if (held_) {
      mutex_.unlock();
    }
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases the mutex before scope exit (reacquire with lock()).
  void unlock() MARSIT_RELEASE() {
    mutex_.unlock();
    held_ = false;
  }
  /// Reacquires after an unlock().
  void lock() MARSIT_ACQUIRE() {
    mutex_.lock();
    held_ = true;
  }

 private:
  Mutex& mutex_;
  bool held_ = true;
};

/// Condition variable over marsit::Mutex.  wait() takes the mutex (which the
/// caller must hold — enforced by the analysis) plus a mandatory predicate:
/// the lost-wakeup-prone predicate-less overload simply does not exist here,
/// making the R6 lint rule structurally unviolatable at these call sites.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { raw_.notify_one(); }
  void notify_all() noexcept { raw_.notify_all(); }

  /// Atomically releases `mutex`, sleeps until `stop_waiting()` is true
  /// (re-checked under the mutex after every wakeup), and returns with
  /// `mutex` reacquired.  The analysis sees the mutex continuously held
  /// across the call, which matches the caller-visible contract.
  template <typename Predicate>
  void wait(Mutex& mutex, Predicate stop_waiting) MARSIT_REQUIRES(mutex) {
    raw_.wait(mutex, std::move(stop_waiting));
  }

 private:
  std::condition_variable_any raw_;
};

}  // namespace marsit
