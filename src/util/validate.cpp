#include "util/validate.hpp"

#include <cmath>
#include <limits>

namespace marsit {

namespace detail {

void throw_validate_error(const char* expr, const char* file, int line,
                          const std::string& msg) {
  std::ostringstream out;
  out << "MARSIT_VALIDATE failed: (" << expr << ") at " << file << ":"
      << line;
  if (!msg.empty()) {
    out << " — " << msg;
  }
  throw ValidateError(out.str());
}

}  // namespace detail

namespace validate {

void fail(const char* contract, const std::string& detail) {
  std::ostringstream out;
  out << "MARSIT_VALIDATE contract '" << contract << "' violated: " << detail;
  throw ValidateError(out.str());
}

void hop_weights(std::size_t weight_a, std::size_t weight_b) {
  if (weight_a == 0 || weight_b == 0) {
    std::ostringstream out;
    out << "aggregate weights (" << weight_a << ", " << weight_b
        << ") must both be >= 1 (Eq. 2 hop index m >= 1)";
    fail("hop-weights", out.str());
  }
  if (weight_a > std::numeric_limits<std::size_t>::max() - weight_b) {
    std::ostringstream out;
    out << "aggregate weights (" << weight_a << ", " << weight_b
        << ") overflow their sum";
    fail("hop-weights", out.str());
  }
}

void probability(double p, const char* what) {
  if (!(p >= 0.0 && p <= 1.0)) {  // negated so NaN also fails
    std::ostringstream out;
    out << what << " = " << p << " is not a probability in [0, 1]";
    fail("probability", out.str());
  }
}

void probability_table(std::span<const double> table, const char* what,
                       double tolerance) {
  double total = 0.0;
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (!(table[i] >= 0.0 && table[i] <= 1.0)) {
      std::ostringstream out;
      out << what << "[" << i << "] = " << table[i]
          << " is not a probability in [0, 1]";
      fail("probability-table", out.str());
    }
    total += table[i];
  }
  if (std::abs(total - 1.0) > tolerance) {
    std::ostringstream out;
    out << what << " sums to " << total << ", expected 1 within "
        << tolerance;
    fail("probability-table", out.str());
  }
}

void membership(std::span<const std::size_t> members,
                std::size_t num_workers) {
  if (members.size() < 2) {
    std::ostringstream out;
    out << "active membership has " << members.size()
        << " workers; a reduction needs at least 2";
    fail("membership", out.str());
  }
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] >= num_workers) {
      std::ostringstream out;
      out << "member " << members[i] << " out of range [0, " << num_workers
          << ")";
      fail("membership", out.str());
    }
    if (i > 0 && members[i] <= members[i - 1]) {
      std::ostringstream out;
      out << "members " << members[i - 1] << ", " << members[i]
          << " out of order at position " << i
          << "; membership must be strictly increasing";
      fail("membership", out.str());
    }
  }
}

void torus_shape(std::size_t rows, std::size_t cols,
                 std::size_t num_workers) {
  if (rows < 2 || cols < 2 || rows * cols != num_workers) {
    std::ostringstream out;
    out << "torus " << rows << "x" << cols << " does not tile "
        << num_workers << " workers with degree >= 2 per axis";
    fail("torus-shape", out.str());
  }
}

void snapshot_header(std::uint32_t version, std::uint32_t supported_version,
                     std::uint64_t declared_digest,
                     std::uint64_t actual_digest, std::uint64_t param_count,
                     std::uint64_t num_workers) {
  if (version < 1 || version > supported_version) {
    std::ostringstream out;
    out << "format version " << version << " outside the supported range [1, "
        << supported_version << "]";
    fail("snapshot-header", out.str());
  }
  if (declared_digest != actual_digest) {
    std::ostringstream out;
    out << "payload digest mismatch: header declares " << std::hex
        << declared_digest << ", payload hashes to " << actual_digest;
    fail("snapshot-header", out.str());
  }
  if (param_count == 0) {
    fail("snapshot-header", "snapshot declares an empty model");
  }
  if (num_workers < 2) {
    std::ostringstream out;
    out << "snapshot declares " << num_workers
        << " workers; a run needs at least 2";
    fail("snapshot-header", out.str());
  }
}

void rejoin_membership(std::span<const std::size_t> rejoined,
                       std::size_t num_workers, std::size_t round,
                       std::size_t flush_period) {
  for (std::size_t i = 0; i < rejoined.size(); ++i) {
    if (rejoined[i] >= num_workers) {
      std::ostringstream out;
      out << "rejoining worker " << rejoined[i] << " out of range [0, "
          << num_workers << ")";
      fail("rejoin-membership", out.str());
    }
    if (i > 0 && rejoined[i] <= rejoined[i - 1]) {
      std::ostringstream out;
      out << "rejoining workers " << rejoined[i - 1] << ", " << rejoined[i]
          << " out of order at position " << i
          << "; the rejoined set must be strictly increasing";
      fail("rejoin-membership", out.str());
    }
  }
  if (!rejoined.empty() && flush_period > 0 && round % flush_period != 0) {
    std::ostringstream out;
    out << "flush-gated rejoin at round " << round
        << ", which is not a multiple of the flush period " << flush_period;
    fail("rejoin-membership", out.str());
  }
}

}  // namespace validate
}  // namespace marsit
