#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace marsit {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double q) {
  MARSIT_CHECK(!samples.empty()) << "percentile of empty sample set";
  MARSIT_CHECK(q >= 0.0 && q <= 1.0) << "quantile " << q << " out of [0,1]";
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double binomial_z_score(std::size_t successes, std::size_t trials, double p) {
  MARSIT_CHECK(trials > 0) << "binomial z-score needs at least one trial";
  MARSIT_CHECK(p > 0.0 && p < 1.0) << "degenerate success probability " << p;
  const double n = static_cast<double>(trials);
  const double expected = n * p;
  const double sd = std::sqrt(n * p * (1.0 - p));
  return (static_cast<double>(successes) - expected) / sd;
}

namespace {

/// P(a, x) by the power series, converging fast for x < a + 1
/// (Numerical Recipes' gser).
double lower_gamma_series(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * 1e-16) {
      break;
    }
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Q(a, x) by the modified Lentz continued fraction, converging fast for
/// x ≥ a + 1 (Numerical Recipes' gcf).
double upper_gamma_cf(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) {
      d = kTiny;
    }
    c = b + an / c;
    if (std::fabs(c) < kTiny) {
      c = kTiny;
    }
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-16) {
      break;
    }
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double upper_regularized_gamma(double a, double x) {
  MARSIT_CHECK(a > 0.0) << "gamma shape must be positive, got " << a;
  MARSIT_CHECK(x >= 0.0) << "gamma argument must be non-negative, got " << x;
  if (x == 0.0) {
    return 1.0;
  }
  return x < a + 1.0 ? 1.0 - lower_gamma_series(a, x) : upper_gamma_cf(a, x);
}

double chi_square_p_value(double statistic, std::size_t dof) {
  MARSIT_CHECK(dof > 0) << "chi-square needs at least one degree of freedom";
  MARSIT_CHECK(statistic >= 0.0) << "negative chi-square statistic "
                                 << statistic;
  return upper_regularized_gamma(static_cast<double>(dof) / 2.0,
                                 statistic / 2.0);
}

double chi_square_statistic(const std::vector<std::size_t>& observed,
                            const std::vector<double>& expected) {
  MARSIT_CHECK(!observed.empty()) << "empty observation vector";
  MARSIT_CHECK(observed.size() == expected.size())
      << observed.size() << " observed cells vs " << expected.size()
      << " expected";
  double statistic = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    MARSIT_CHECK(expected[i] > 0.0)
        << "expected count " << expected[i] << " in cell " << i;
    const double diff = static_cast<double>(observed[i]) - expected[i];
    statistic += diff * diff / expected[i];
  }
  return statistic;
}

}  // namespace marsit
