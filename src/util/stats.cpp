#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace marsit {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double q) {
  MARSIT_CHECK(!samples.empty()) << "percentile of empty sample set";
  MARSIT_CHECK(q >= 0.0 && q <= 1.0) << "quantile " << q << " out of [0,1]";
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double binomial_z_score(std::size_t successes, std::size_t trials, double p) {
  MARSIT_CHECK(trials > 0) << "binomial z-score needs at least one trial";
  MARSIT_CHECK(p > 0.0 && p < 1.0) << "degenerate success probability " << p;
  const double n = static_cast<double>(trials);
  const double expected = n * p;
  const double sd = std::sqrt(n * p * (1.0 - p));
  return (static_cast<double>(successes) - expected) / sd;
}

}  // namespace marsit
