#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "util/thread_safety.hpp"

namespace marsit {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarning:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

Mutex& emit_mutex() {
  static Mutex mutex;
  return mutex;
}

double elapsed_seconds() {
  // marsit-lint: allow(determinism): log-line timestamps annotate stderr
  // only; nothing downstream (digests, wire payloads, timings) reads them.
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

namespace detail {

LogRecord::~LogRecord() {
  const std::string message = stream_.str();
  const MutexLock lock(emit_mutex());
  std::fprintf(stderr, "[%9.3f] %s %s\n", elapsed_seconds(),
               level_tag(level_), message.c_str());
}

}  // namespace detail
}  // namespace marsit
