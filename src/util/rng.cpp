#include "util/rng.hpp"

#include <cmath>

#include "util/check.hpp"

namespace marsit {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream) {
  // Mix the stream index through SplitMix64 twice so that adjacent stream
  // ids land far apart in the parent sequence.
  SplitMix64 mixer(seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  mixer.next();
  return mixer.next();
}

Rng::Rng(std::uint64_t seed) {
  SplitMix64 mixer(seed);
  for (auto& word : state_) {
    word = mixer.next();
  }
  // xoshiro must not start from the all-zero state; SplitMix64 can only
  // produce that for one seed in 2^256, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x8badf00ddeadbeefULL;
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  MARSIT_CHECK(bound > 0) << "next_below requires a positive bound";
  // Lemire's multiply-shift method with rejection to remove modulo bias.
  std::uint64_t x = next_u64();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<unsigned __int128>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float Rng::next_float() {
  return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 is kept away from 0 so log() is finite.
  double u1 = next_double();
  while (u1 <= 0.0) {
    u1 = next_double();
  }
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

std::uint64_t Rng::bernoulli_word(double p) {
  if (p <= 0.0) {
    return 0;
  }
  if (p >= 1.0) {
    return ~std::uint64_t{0};
  }
  // Bit-plane method: each lane holds an implicit uniform U in [0,1) revealed
  // one binary digit per plane; the lane's output bit is [U < p].  A lane is
  // decided at the first plane where its digit differs from p's digit.
  std::uint64_t result = 0;
  std::uint64_t undecided = ~std::uint64_t{0};
  double frac = p;
  for (int plane = 0; plane < 64 && undecided != 0; ++plane) {
    frac *= 2.0;
    const bool p_bit = frac >= 1.0;
    if (p_bit) {
      frac -= 1.0;
    }
    const std::uint64_t random_plane = next_u64();
    if (p_bit) {
      // Lanes whose digit is 0 while p's digit is 1 have U < p.
      result |= undecided & ~random_plane;
      undecided &= random_plane;
    } else {
      // Lanes whose digit is 1 while p's digit is 0 have U > p.
      undecided &= ~random_plane;
    }
    if (frac == 0.0) {
      // p's remaining digits are all zero: every still-undecided lane has
      // U >= p, output bit 0, so we are done.
      break;
    }
  }
  return result;
}

}  // namespace marsit
