// Deterministic, explicitly-seeded random number generation.
//
// Every stochastic component in marsit (data synthesis, SSDM's stochastic
// sign, the ⊙ operator's Bernoulli transient vector, ...) draws from an
// explicitly constructed Rng, never from global state, so whole experiments
// are bit-reproducible from a single root seed.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded through SplitMix64
// as its authors recommend.  Both are implemented here rather than taken from
// <random> because we need (a) a documented, stable bit stream across
// standard-library versions, and (b) cheap word-at-a-time output for packed
// sign-bit sampling.
#pragma once

#include <array>
#include <cstdint>
#include <utility>

namespace marsit {

/// SplitMix64: stateless-per-step 64-bit mixer.  Used to expand a single
/// seed into xoshiro state and to derive independent stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Derives an independent child seed from a parent seed and a stream index.
/// Children of distinct (seed, stream) pairs produce decorrelated sequences;
/// used to give every (worker, round, segment) its own Bernoulli stream.
std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream);

/// xoshiro256**: the project-wide PRNG.  Satisfies the
/// uniform_random_bit_generator concept so it also plugs into <random>
/// distributions when convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  // marsit-lint: allow(rng-discipline): the project-wide default root seed
  // ("marsit" in ASCII) — the single legitimate literal seeding point; every
  // other stream must reach an Rng through derive_seed(seed, stream).
  explicit Rng(std::uint64_t seed = 0x6d61727369740001ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Raw 64 uniform bits.
  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64();

  /// Uniform in [0, bound).  bound must be > 0.  Uses Lemire's unbiased
  /// multiply-shift rejection method.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1) with 53 random mantissa bits.
  double next_double();

  /// Uniform float in [0, 1).
  float next_float();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller (caches the second variate).
  double normal();

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Bernoulli(p): true with probability p.
  bool bernoulli(double p) { return next_double() < p; }

  /// A 64-bit word whose bits are i.i.d. Bernoulli(p).  This is the packed
  /// primitive behind the ⊙ operator's transient vector.  Implemented with
  /// the bit-plane comparison method: lanes compare their uniform binary
  /// fraction against p's binary expansion plane by plane, so each bit is
  /// *exactly* Bernoulli(p) (to the full precision of the double) while
  /// consuming ~8 raw words on average instead of 64 scalar draws.
  /// Exactness matters: the unbiasedness of Marsit's one-bit aggregation
  /// (Eq. 2 of the paper) rests on these probabilities being exact.
  std::uint64_t bernoulli_word(double p);

  /// Fisher–Yates index for shuffles: alias of next_below.
  std::uint64_t index(std::uint64_t bound) { return next_below(bound); }

 private:
  std::array<std::uint64_t, 4> state_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Shuffles [first, last) indices in-place with the given Rng
/// (std::shuffle's algorithm is unspecified across implementations; this one
/// is pinned for reproducibility).
template <typename It>
void deterministic_shuffle(It first, It last, Rng& rng) {
  const auto n = static_cast<std::uint64_t>(last - first);
  for (std::uint64_t i = n; i > 1; --i) {
    const std::uint64_t j = rng.next_below(i);
    using std::swap;
    swap(first[i - 1], first[j]);
  }
}

}  // namespace marsit
