// Figure 3 — Training CIFAR-10 over AlexNet with Marsit at
// K ∈ {1, 50, 100, 200, ∞}: (a) accuracy curves over training and (b) the
// convergence table {K, time, accuracy, average bits per element}.
//
// The paper's table:  K=1: 40.2 min / 93.4 % / 32 bits; K=50: 22.1 / 92.3 /
// 1.62; K=100: 21.3 / 91.7 / 1.31; K=200: 22.4 / 92.0 / 1.16; K=∞: 18.8 /
// 90.8 / 1.  Shape: K=1 (always full precision) is most accurate but
// slowest; K=∞ is fastest and cheapest but least accurate; intermediate K
// trades between them.  Bits follow (K−1+32)/K exactly.
//
// Reproduction: SyntheticImages + AlexNetMini, 400 rounds (the paper's run
// length), K scaled to the run: {1, 25, 50, 100, ∞}.
#include "bench_util.hpp"
#include "data/synthetic_images.hpp"
#include "nn/models.hpp"

using namespace marsit;
using namespace marsit::bench;

int main(int argc, char** argv) {
  quiet_logs();
  const std::size_t rounds = arg_override(argc, argv, "--rounds", 400);
  const std::size_t workers = 4;

  print_header(
      "Figure 3: Marsit full-precision period K sweep (images/AlexNet-mini)",
      {"K=1: slowest, most accurate, 32 bits/elem; K=inf: fastest, least "
       "accurate, 1 bit/elem; bits = (K-1+32)/K"});

  SyntheticImages images;
  auto factory = [&images] {
    return make_alexnet_mini(images.image_dims(), images.num_classes());
  };

  struct Sweep {
    std::string label;
    std::size_t k;
  };
  const std::vector<Sweep> sweeps = {
      {"1", 1}, {"25", 25}, {"50", 50}, {"100", 100}, {"inf", 0}};

  TextTable curve({"K", "round", "sim time", "test acc (%)"});
  TextTable summary({"K", "sim time", "final acc (%)", "bits/elem"});

  for (const Sweep& sweep : sweeps) {
    MarsitOptions options;
    options.eta_s = 2e-3f;
    options.full_precision_period = sweep.k;
    options.full_precision_max_norm = 0.5f;
    MarsitSync strategy(ring_config(workers), options);

    TrainerConfig config;
    config.batch_size_per_worker = 16;
    config.optimizer = OptimizerKind::kMomentum;
    config.clip_grad_norm = 2.0f;
    config.eta_l = 0.05f;
    config.rounds = rounds;
    config.eval_interval = rounds / 8;
    config.eval_samples = 512;
    config.seed = 10;

    DistributedTrainer trainer(images, factory, strategy, config);
    const TrainResult result = trainer.train();

    for (const EvalPoint& point : result.evals) {
      curve.add_row({sweep.label, std::to_string(point.round),
                     format_duration(point.sim_seconds),
                     format_fixed(100.0 * point.test_accuracy, 1)});
    }
    summary.add_row({sweep.label, format_duration(result.sim_seconds),
                     format_fixed(100.0 * result.final_test_accuracy, 1),
                     format_fixed(result.mean_bits_per_element, 2)});
  }

  std::cout << "(a) accuracy over training\n";
  curve.print(std::cout);
  std::cout << "\n(b) convergence summary\n";
  summary.print(std::cout);
  std::cout << "\nshape check: time decreases from K=1 toward K=inf while "
               "final accuracy\ndrifts down; bits/elem follows (K-1+32)/K.\n";
  return 0;
}
