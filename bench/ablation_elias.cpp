// Elias-coding ablation — wire bits per element of the sign-sum baselines
// (fixed width vs Elias-γ, both measured on real folded data) vs Marsit's
// constant one bit, across worker counts and gradient-correlation regimes.
//
// Elias coding only pays when the sums concentrate near zero (uncorrelated
// worker signs); on correlated gradients the sums pile up at ±M and γ codes
// get *longer* than the fixed width — so a deployed sender picks
// min(fixed, Elias) per message (the "hybrid" column, used by the Figure 5
// bench).  Marsit needs none of this: one bit at every hop by construction.
#include <algorithm>

#include "bench_util.hpp"
#include "collectives/aggregators.hpp"
#include "compress/sign_codec.hpp"
#include "compress/sign_sum.hpp"
#include "tensor/ops.hpp"

using namespace marsit;
using namespace marsit::bench;

namespace {

/// Measured Elias bits/element at full contribution count for worker sign
/// vectors with the given cross-worker correlation (signal-to-noise).
double measured_elias(std::size_t m, std::size_t d, double signal_weight,
                      Rng& rng) {
  Tensor signal(d);
  fill_normal(signal.span(), rng, 0.0f, 1.0f);
  std::vector<BitVector> signs;
  Tensor g(d);
  for (std::size_t w = 0; w < m; ++w) {
    for (std::size_t i = 0; i < d; ++i) {
      g[i] = static_cast<float>(signal[i] * signal_weight + rng.normal());
    }
    signs.push_back(pack_signs(g.span()));
  }
  return aggregate_sign_sum(signs, true).elias_bits_per_element.back();
}

}  // namespace

int main(int argc, char** argv) {
  quiet_logs();
  const std::size_t d = arg_override(argc, argv, "--params", 1u << 16);

  print_header(
      "Ablation: Elias coding vs fixed-width sign-sums vs Marsit's one bit",
      {"baselines need ceil(log2(M+1))+1 bits/elem at the last hop; Elias "
       "helps only on weakly-correlated sums; Marsit is 1 bit always"});

  TextTable table({"M", "fixed", "Elias (uncorrelated)",
                   "Elias (correlated)", "hybrid min", "Marsit"});

  for (std::size_t m : {4u, 8u, 16u, 32u, 64u}) {
    Rng rng(60 + m);
    const double fixed = static_cast<double>(sign_sum_bits_per_element(m));
    const double elias_uncorr = measured_elias(m, d, 0.0, rng);
    const double elias_corr = measured_elias(m, d, 1.0, rng);
    const double hybrid = std::min({fixed, elias_uncorr, elias_corr});
    table.add_row({std::to_string(m), format_fixed(fixed, 0),
                   format_fixed(elias_uncorr, 2),
                   format_fixed(elias_corr, 2), format_fixed(hybrid, 2),
                   "1"});
  }
  table.print(std::cout);
  std::cout << "\nshape check: on uncorrelated sums Elias beats the fixed "
               "width and the gap\ngrows with M; on correlated sums it "
               "loses; all columns stay far above\nMarsit's constant 1.\n";
  return 0;
}
