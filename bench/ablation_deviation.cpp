// Theorems 2 & 3 (empirical) — aggregation deviation ‖s − s₁‖² between each
// compressed aggregate and the exact mean, as the worker count grows:
// SSDM under PS stays bounded (O(DG²), flat in M) while cascading
// compression's deviation explodes with M — the paper's core motivation.
// Marsit's one-bit aggregate (same wire budget as cascading) is shown for
// contrast.
#include <cmath>

#include "bench_util.hpp"
#include "collectives/aggregators.hpp"
#include "compress/sign_codec.hpp"
#include "core/one_bit.hpp"
#include "tensor/ops.hpp"

using namespace marsit;
using namespace marsit::bench;

int main(int argc, char** argv) {
  quiet_logs();
  const std::size_t d = arg_override(argc, argv, "--params", 512);
  const std::size_t trials = arg_override(argc, argv, "--trials", 100);

  print_header(
      "Theorems 2/3 ablation: aggregation deviation vs worker count",
      {"SSDM-PS deviation bounded by O(D G^2), flat in M;",
       "cascading compression deviation grows explosively with M"});

  TextTable table({"M", "SSDM-PS dev^2", "cascading dev^2", "Marsit dev^2",
                   "cascading/PS ratio"});

  for (std::size_t m : {2u, 3u, 4u, 6u, 8u, 12u}) {
    double dev_ps = 0.0, dev_cascade = 0.0, dev_marsit = 0.0;
    for (std::size_t t = 0; t < trials; ++t) {
      Rng rng(derive_seed(40 + m, t));
      std::vector<Tensor> gradients;
      WorkerSpans spans;
      for (std::size_t w = 0; w < m; ++w) {
        Tensor g(d);
        fill_normal(g.span(), rng, 0.0f, 1.0f);
        gradients.push_back(std::move(g));
      }
      for (const auto& g : gradients) {
        spans.push_back(g.span());
      }
      Tensor exact(d), out(d), diff(d);
      aggregate_mean(spans, exact.span());

      ssdm_ps_aggregate(spans, rng, out.span());
      sub(out.span(), exact.span(), diff.span());
      dev_ps += squared_l2_norm(diff.span());

      cascading_aggregate(spans, rng, out.span(),
                          CascadeDecode::kUnbiased);
      sub(out.span(), exact.span(), diff.span());
      dev_cascade += squared_l2_norm(diff.span());

      // Marsit: fold signs, decode with the mean-gradient scale so the
      // comparison is about *direction* fidelity at equal wire budget.
      std::vector<BitVector> signs;
      for (const auto& g : gradients) {
        signs.push_back(pack_signs(g.span()));
      }
      const BitVector folded = one_bit_fold(signs, rng);
      const float scale = l1_norm(exact.span()) / static_cast<float>(d);
      unpack_signs(folded, scale, out.span());
      sub(out.span(), exact.span(), diff.span());
      dev_marsit += squared_l2_norm(diff.span());
    }
    const double n = static_cast<double>(trials);
    table.add_row({std::to_string(m), format_scientific(dev_ps / n),
                   format_scientific(dev_cascade / n),
                   format_scientific(dev_marsit / n),
                   format_scientific(dev_cascade / std::max(dev_ps, 1e-9),
                                     1) +
                       "x"});
  }
  table.print(std::cout);
  std::cout << "\nshape check: the SSDM-PS column stays flat; the cascading "
               "column (and the\nratio) grows rapidly with M; Marsit stays "
               "small and flat.\n";
  return 0;
}
