// Theorem 1 (empirical) — linear speedup in the worker count: with the
// theory's stepsize scaling, more workers reach a lower stationary gradient
// norm in the same number of rounds, for both PSGD and Marsit.
#include <cmath>

#include "bench_util.hpp"
#include "core/distributed_sgd.hpp"
#include "tensor/ops.hpp"

using namespace marsit;
using namespace marsit::bench;

int main(int argc, char** argv) {
  quiet_logs();
  const std::size_t rounds = arg_override(argc, argv, "--rounds", 400);
  const std::size_t d = 256;
  const double sigma = 2.0;

  print_header(
      "Theorem 1 ablation: linear speedup in M on a noisy quadratic",
      {"min_t E||grad F||^2 = O(1/sqrt(MT)) — the gradient-norm floor "
       "shrinks as workers are added"});

  TextTable table({"M", "PSGD  E||g||^2", "Marsit  E||g||^2",
                   "Marsit traffic vs PSGD"});

  for (std::size_t m : {2u, 4u, 8u, 16u, 32u}) {
    const auto objective = make_quadratic_objective(d, m, sigma, 33);
    Tensor x0(d);
    fill(x0.span(), 3.0f);

    DistributedSgdOptions options;
    options.eta_l = 0.05f;
    options.rounds = rounds;
    options.eval_interval = rounds / 4;

    PsgdSync psgd(ring_config(m, 33));
    const auto psgd_trace = run_distributed_sgd(psgd, objective, x0, options);

    MarsitOptions marsit_options;
    marsit_options.eta_s = 0.02f;
    marsit_options.full_precision_period = 25;
    MarsitSync marsit(ring_config(m, 33), marsit_options);
    DistributedSgdOptions marsit_run = options;
    marsit_run.eta_l = 0.02f;
    const auto marsit_trace =
        run_distributed_sgd(marsit, objective, x0, marsit_run);

    table.add_row({std::to_string(m),
                   format_fixed(psgd_trace.grad_norms_sq.back(), 3),
                   format_fixed(marsit_trace.grad_norms_sq.back(), 3),
                   format_fixed(100.0 * marsit_trace.total_wire_bits /
                                    psgd_trace.total_wire_bits,
                                1) +
                       " %"});
  }
  table.print(std::cout);
  std::cout << "\nshape check: both gradient-norm columns decrease "
               "monotonically (up to noise)\nas M grows — the linear-speedup "
               "signature.\n";
  return 0;
}
