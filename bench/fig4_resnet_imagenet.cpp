// Figure 4 — ResNet-50 on ImageNet, six methods:
//   (a) time-to-accuracy: Marsit reaches PSGD-level accuracy ~1.5× faster;
//   (b) accuracy vs cumulative communication: Marsit needs ~90 % less
//       traffic than PSGD and ~70 % less than the signSGD-family baselines.
//
// Reproduction: SyntheticImages (imagenet-like config) + ResNet50-mini,
// 4 workers on RAR, simulated time / wire-traffic axes.
#include "bench_util.hpp"
#include "data/synthetic_images.hpp"
#include "nn/models.hpp"

using namespace marsit;
using namespace marsit::bench;

int main(int argc, char** argv) {
  quiet_logs();
  const std::size_t rounds = arg_override(argc, argv, "--rounds", 240);
  const std::size_t workers = 4;

  print_header(
      "Figure 4: ResNet-class model on images-L — time-to-accuracy and "
      "communication efficiency",
      {"(a) Marsit ~1.5x faster than PSGD to similar accuracy",
       "(b) Marsit ~90 % less traffic than PSGD, ~70 % less than signSGD "
       "baselines"});

  // The ResNet-18 preset stands in for the paper's ResNet-50 here: the -50
  // preset needs a training budget beyond this harness's default wall time
  // to leave the noise floor, which would make the time/accuracy panels
  // vacuous.  Communication accounting is independent of that choice.
  SyntheticImages images(SyntheticImagesConfig::imagenet_like());
  auto factory = [&images] {
    return make_resnet18_mini(images.image_dims(), images.num_classes());
  };

  TextTable curves({"method", "round", "sim time", "traffic", "acc (%)"});
  TextTable summary({"method", "final acc (%)", "total sim time",
                     "total traffic", "time vs PSGD", "traffic vs PSGD"});

  double psgd_seconds = 0.0;
  double psgd_bits = 0.0;

  for (const MethodSpec& spec : paper_method_lineup()) {
    MethodOptions options;
    options.eta_s = 2e-3f;
    if (spec.full_precision_period > 0) {
      options.full_precision_period = std::max<std::size_t>(2, rounds / 10);
      options.full_precision_max_norm = 0.5f;
    }
    auto strategy =
        make_sync_strategy(spec.method, ring_config(workers), options);

    TrainerConfig config;
    config.batch_size_per_worker = 16;
    config.optimizer = OptimizerKind::kMomentum;
    config.clip_grad_norm = 2.0f;
    config.eta_l = 0.015f;
    config.rounds = rounds;
    config.eval_interval = rounds / 8;
    config.eval_samples = 512;
    config.seed = 12;

    DistributedTrainer trainer(images, factory, *strategy, config);
    const TrainResult result = trainer.train();

    for (const EvalPoint& point : result.evals) {
      curves.add_row({spec.label, std::to_string(point.round),
                      format_duration(point.sim_seconds),
                      format_bytes(point.wire_gigabits * 1e9 / 8.0),
                      format_fixed(100.0 * point.test_accuracy, 1)});
    }
    if (spec.method == SyncMethod::kPsgd) {
      psgd_seconds = result.sim_seconds;
      psgd_bits = result.total_wire_bits;
    }
    const std::string time_ratio =
        psgd_seconds > 0
            ? format_fixed(result.sim_seconds / psgd_seconds, 2) + "x"
            : "-";
    const std::string traffic_ratio =
        psgd_bits > 0
            ? format_fixed(100.0 * result.total_wire_bits / psgd_bits, 1) +
                  " %"
            : "-";
    summary.add_row({spec.label,
                     format_fixed(100.0 * result.final_test_accuracy, 1),
                     format_duration(result.sim_seconds),
                     format_bytes(result.total_wire_bits / 8.0), time_ratio,
                     traffic_ratio});
    std::cout << "." << std::flush;
  }
  std::cout << "\n\n(a)+(b) accuracy over simulated time and traffic\n";
  curves.print(std::cout);
  std::cout << "\nsummary\n";
  summary.print(std::cout);
  std::cout << "\nshape check: Marsit rows finish in a fraction of PSGD's "
               "time with ~3 %\nof its traffic (~90 % less than PSGD, ~70 % "
               "less than sign-sum baselines)\nat comparable accuracy.\n";
  return 0;
}
