// Figure 1b — Sign matching rate of each aggregation scheme against the
// non-compressed aggregation, with 3 workers.  The paper reports cascading
// compression lowest at ≈56 % while the other schemes sit substantially
// higher.
//
// Reproduction notes: worker gradients are heavy-tailed (cubed Gaussians —
// real gradients concentrate their mass in few coordinates) and correlated
// across workers (shared signal + worker noise).  Two metrics are reported:
// the raw per-coordinate matching rate and the magnitude-weighted rate,
// which measures agreement on the gradient mass that actually moves the
// model.  Stochastic-sign schemes (SSDM, cascading) are near coin-level on
// tiny coordinates by construction, so the weighted rate is the comparison
// that separates them — cascading stays at the bottom either way.
#include <cmath>

#include "bench_util.hpp"
#include "collectives/aggregators.hpp"
#include "compress/sign_codec.hpp"
#include "core/one_bit.hpp"
#include "tensor/ops.hpp"

using namespace marsit;
using namespace marsit::bench;

namespace {

/// Heavy-tailed correlated worker gradients: g_m = z³ + (n_m)³/snr.
std::vector<Tensor> make_gradients(std::size_t m, std::size_t d, double snr,
                                   Rng& rng) {
  Tensor signal(d);
  for (std::size_t i = 0; i < d; ++i) {
    const double z = rng.normal();
    signal[i] = static_cast<float>(z * z * z);
  }
  std::vector<Tensor> gradients;
  for (std::size_t w = 0; w < m; ++w) {
    Tensor g = signal;
    for (std::size_t i = 0; i < d; ++i) {
      const double z = rng.normal();
      g[i] += static_cast<float>(z * z * z / snr);
    }
    gradients.push_back(std::move(g));
  }
  return gradients;
}

WorkerSpans spans_of(const std::vector<Tensor>& gradients) {
  WorkerSpans spans;
  for (const auto& g : gradients) {
    spans.push_back(g.span());
  }
  return spans;
}

struct Rates {
  double raw = 0.0;
  double weighted = 0.0;

  void add(std::span<const float> exact, std::span<const float> value) {
    raw += sign_matching_rate(exact, value);
    weighted += weighted_sign_matching_rate(exact, value);
  }
};

}  // namespace

int main(int argc, char** argv) {
  quiet_logs();
  const std::size_t m = 3;
  const std::size_t d = arg_override(argc, argv, "--params", 4096);
  const std::size_t trials = arg_override(argc, argv, "--trials", 50);
  const double snr = 1.0;

  print_header("Figure 1b: sign matching rate vs non-compressed aggregation "
               "(M=3)",
               {"cascading lowest (≈56 %); signSGD/EF/SSDM and Marsit "
                "substantially higher"});

  Rates mv, ef, ssdm, cascade, marsit;
  for (std::size_t t = 0; t < trials; ++t) {
    Rng rng(derive_seed(17, t));
    const auto gradients = make_gradients(m, d, snr, rng);
    const auto spans = spans_of(gradients);

    Tensor exact(d);
    aggregate_mean(spans, exact.span());
    Tensor decoded(d);

    // signSGD with majority vote.
    std::vector<BitVector> det_signs;
    for (const auto& g : gradients) {
      det_signs.push_back(pack_signs(g.span()));
    }
    const auto det_sum = aggregate_sign_sum(det_signs);
    unpack_signs(det_sum.sum.majority(), 1.0f, decoded.span());
    mv.add(exact.span(), decoded.span());

    // EF-signSGD (first step: sign(p) = sign(g)); wire-decoded mean sign.
    det_sum.sum.mean_into(decoded.span());
    ef.add(exact.span(), decoded.span());

    // SSDM under MAR: stochastic signs summed.
    std::vector<BitVector> ssdm_signs;
    for (const auto& g : gradients) {
      ssdm_signs.push_back(ssdm_pack(g.span(), rng));
    }
    const auto ssdm_sum = aggregate_sign_sum(ssdm_signs);
    ssdm_sum.sum.mean_into(decoded.span());
    ssdm.add(exact.span(), decoded.span());

    // Cascading compression (the deployable norm-preserving decode).
    cascading_aggregate(spans, rng, decoded.span());
    cascade.add(exact.span(), decoded.span());

    // Marsit's one-bit fold.
    const BitVector folded = one_bit_fold(det_signs, rng);
    unpack_signs(folded, 1.0f, decoded.span());
    marsit.add(exact.span(), decoded.span());
  }

  const double n = static_cast<double>(trials);
  TextTable table({"metric", "signSGD-MV", "EF-signSGD", "SSDM-MAR",
                   "cascading", "Marsit"});
  table.add_row({"per-coordinate", format_fixed(100.0 * mv.raw / n, 1) + " %",
                 format_fixed(100.0 * ef.raw / n, 1) + " %",
                 format_fixed(100.0 * ssdm.raw / n, 1) + " %",
                 format_fixed(100.0 * cascade.raw / n, 1) + " %",
                 format_fixed(100.0 * marsit.raw / n, 1) + " %"});
  table.add_row({"magnitude-weighted",
                 format_fixed(100.0 * mv.weighted / n, 1) + " %",
                 format_fixed(100.0 * ef.weighted / n, 1) + " %",
                 format_fixed(100.0 * ssdm.weighted / n, 1) + " %",
                 format_fixed(100.0 * cascade.weighted / n, 1) + " %",
                 format_fixed(100.0 * marsit.weighted / n, 1) + " %"});
  table.print(std::cout);
  std::cout << "\nshape check: cascading is the lowest column (near coin "
               "level, paper: ≈56 %);\ndeterministic-sign schemes and Marsit "
               "track the exact aggregation far better,\nespecially on the "
               "magnitude-weighted metric.\n";
  return 0;
}
