// Table 2 — Top-1 accuracy of PSGD / signSGD / EF-signSGD / SSDM /
// Marsit-100 / Marsit across the paper's five model×dataset rows.
//
// Paper rows (accuracies %):
//   AlexNet/CIFAR-10:    82.4 80.7 82.3 81.9 82.3 81.6
//   ResNet-20/CIFAR-10:  93.4 88.9 91.9 89.2 92.2 90.2
//   ResNet-18/ImageNet:  69.2 67.2 68.1 68.1 69.0 68.4
//   ResNet-50/ImageNet:  74.9 72.7 73.9 73.4 74.4 74.1
//   DistilBERT/IMDb:     92.2 89.1 90.6 91.4 90.1 90.3
// Shape: PSGD best; plain signSGD loses the most (up to ~5 %); Marsit-100
// and Marsit close most of the gap.
//
// Reproduction rows (DESIGN.md §2): digits+AlexNetMini,
// images+ResNet20Mini, images-L+ResNet18Mini, images-L+ResNet50Mini,
// sentiment+TextClassifier (Adam).  K for "Marsit-100" is scaled to the
// shorter runs (rounds/4).
#include <memory>

#include "bench_util.hpp"
#include "data/synthetic_digits.hpp"
#include "data/synthetic_images.hpp"
#include "data/synthetic_sentiment.hpp"
#include "nn/models.hpp"

using namespace marsit;
using namespace marsit::bench;

namespace {

struct TaskRow {
  std::string label;
  std::unique_ptr<Dataset> dataset;
  std::function<Sequential()> factory;
  OptimizerKind optimizer = OptimizerKind::kMomentum;
  float eta_l = 0.015f;
  float eta_s = 2e-3f;
  std::size_t rounds = 250;
  std::size_t batch = 16;
};

}  // namespace

int main(int argc, char** argv) {
  quiet_logs();
  const std::size_t base_rounds = arg_override(argc, argv, "--rounds", 250);

  print_header(
      "Table 2: top-1 accuracy across tasks and methods",
      {"PSGD highest; signSGD drops up to ~5 %; EF-signSGD/SSDM in between;",
       "Marsit-100 and Marsit nearly match PSGD"});

  std::vector<TaskRow> tasks;
  {
    TaskRow row;
    row.label = "AlexNet-mini / digits";
    auto digits = std::make_unique<SyntheticDigits>();
    auto* raw = digits.get();
    row.factory = [raw] {
      return make_alexnet_mini(raw->image_dims(), raw->num_classes());
    };
    row.dataset = std::move(digits);
    row.eta_l = 0.05f;
    row.rounds = base_rounds;
    tasks.push_back(std::move(row));
  }
  {
    TaskRow row;
    row.label = "ResNet20-mini / images";
    auto images = std::make_unique<SyntheticImages>();
    auto* raw = images.get();
    row.factory = [raw] {
      return make_resnet20_mini(raw->image_dims(), raw->num_classes());
    };
    row.dataset = std::move(images);
    row.rounds = base_rounds;
    tasks.push_back(std::move(row));
  }
  {
    TaskRow row;
    row.label = "ResNet18-mini / images-L";
    auto images = std::make_unique<SyntheticImages>(
        SyntheticImagesConfig::imagenet_like());
    auto* raw = images.get();
    row.factory = [raw] {
      return make_resnet18_mini(raw->image_dims(), raw->num_classes());
    };
    row.dataset = std::move(images);
    row.rounds = base_rounds * 2 / 3;
    tasks.push_back(std::move(row));
  }
  {
    TaskRow row;
    row.label = "ResNet50-mini / images-L";
    auto images = std::make_unique<SyntheticImages>(
        SyntheticImagesConfig::imagenet_like());
    auto* raw = images.get();
    row.factory = [raw] {
      return make_resnet50_mini(raw->image_dims(), raw->num_classes());
    };
    row.dataset = std::move(images);
    row.rounds = base_rounds * 2 / 3;
    tasks.push_back(std::move(row));
  }
  {
    TaskRow row;
    row.label = "TextClassifier / sentiment";
    auto sentiment = std::make_unique<SyntheticSentiment>();
    auto* raw = sentiment.get();
    row.factory = [raw] {
      return make_text_classifier(raw->vocab_size(), raw->seq_len(), 16, 2);
    };
    row.dataset = std::move(sentiment);
    row.optimizer = OptimizerKind::kAdam;
    row.eta_l = 0.01f;
    row.eta_s = 1e-3f;
    row.rounds = base_rounds;
    tasks.push_back(std::move(row));
  }

  std::vector<std::string> header = {"task", "#params"};
  for (const MethodSpec& spec : paper_method_lineup()) {
    header.push_back(spec.label);
  }
  TextTable table(header);

  for (TaskRow& task : tasks) {
    std::vector<std::string> row = {task.label, ""};
    for (const MethodSpec& spec : paper_method_lineup()) {
      MethodOptions options;
      options.eta_s = task.eta_s;
      if (spec.full_precision_period > 0) {
        // "Marsit-100" scaled to the (shorter) run length, with the flush
        // trust region (EXPERIMENTS.md discusses why).
        options.full_precision_period =
            std::max<std::size_t>(2, task.rounds / 10);
        options.full_precision_max_norm = 0.5f;
      }
      auto strategy = make_sync_strategy(spec.method, ring_config(4), options);

      TrainerConfig config;
      config.batch_size_per_worker = task.batch;
      config.optimizer = task.optimizer;
      config.eta_l = task.eta_l;
      config.clip_grad_norm = 2.0f;
      config.rounds = task.rounds;
      config.eval_interval = task.rounds / 4;
      config.eval_samples = 768;
      config.seed = 11;

      DistributedTrainer trainer(*task.dataset, task.factory, *strategy,
                                 config);
      if (row[1].empty()) {
        row[1] = std::to_string(trainer.param_count());
      }
      const TrainResult result = trainer.train();
      row.push_back(result.diverged
                        ? "div."
                        : format_fixed(100.0 * result.best_test_accuracy, 1));
      std::cout << "." << std::flush;
    }
    table.add_row(std::move(row));
  }
  std::cout << "\n\n";
  table.print(std::cout);
  std::cout << "\nshape check: PSGD column highest per row; signSGD lowest "
               "of the\ncompressed methods; Marsit(-K) closest to PSGD.\n";
  return 0;
}
