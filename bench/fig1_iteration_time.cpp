// Figure 1a — Per-iteration time breakdown (computation / compression /
// communication) for training MNIST over AlexNet with 3 workers, comparing:
//
//   PSGD under PS, PSGD under RAR (all-reduce), SSDM under PS,
//   SSDM under MAR (growing sign-sums), and cascading compression.
//
// The paper's findings: RAR beats PS for full precision; SSDM-MAR's growing
// packages make it slower than its PS version; cascading compression's
// decompress-recompress dominates its iteration.
//
// This is a cost-model experiment (no training needed): we use the real
// AlexNet scale the paper trained (23M parameters — its Table 2 size) and
// the calibrated CostModel (net/cost_model.hpp).
#include "bench_util.hpp"
#include "collectives/timing.hpp"

using namespace marsit;
using namespace marsit::bench;

int main(int argc, char** argv) {
  quiet_logs();
  const std::size_t workers = 3;
  const std::size_t d = arg_override(argc, argv, "--params", 23u * 1000 * 1000);
  const CostModel model;

  // Computation: AlexNet forward+backward ≈ 6 flops/param/sample ×
  // reuse; use the standard ~3× forward estimate on a 16-sample batch.
  const double batch = 16.0;
  const double compute_flops = 6.0 * static_cast<double>(d) * batch;
  const double compute_seconds = model.compute_seconds(compute_flops);

  print_header(
      "Figure 1a: per-iteration time breakdown (MNIST/AlexNet, M=3)",
      {"RAR full-precision < PS full-precision; SSDM-MAR slower than "
       "SSDM-PS in transmission; cascading dominated by its "
       "decompression-compression period"});

  struct Row {
    std::string label;
    CollectiveTiming timing;
  };
  std::vector<Row> rows;

  {
    NetworkSim net(workers + 1, model);
    rows.push_back({"PSGD (PS)", ps_allreduce_timing(
                                     workers, d, full_precision_wire(), net)});
  }
  {
    NetworkSim net(workers, model);
    rows.push_back({"PSGD (RAR)", ring_allreduce_timing(
                                      workers, d, full_precision_wire(),
                                      net)});
  }
  {
    NetworkSim net(workers + 1, model);
    WireFormat ssdm_ps;
    ssdm_ps.reduce_bits = [](std::size_t elements, std::size_t) {
      return static_cast<double>(elements) + 32.0;
    };
    ssdm_ps.gather_bits = [](std::size_t elements) {
      return static_cast<double>(elements) + 32.0;
    };
    ssdm_ps.initial_pack_seconds_per_element =
        1.0 / model.stochastic_sign_rate;
    ssdm_ps.final_unpack_seconds_per_element = 1.0 / model.sign_unpack_rate;
    rows.push_back({"SSDM (PS)",
                    ps_allreduce_timing(workers, d, ssdm_ps, net)});
  }
  {
    NetworkSim net(workers, model);
    rows.push_back({"SSDM (MAR)", ring_allreduce_timing(
                                      workers, d, sign_sum_wire(model, 1),
                                      net)});
  }
  {
    NetworkSim net(workers, model);
    rows.push_back({"Cascading (RAR)",
                    ring_allreduce_timing(workers, d, cascading_wire(model),
                                          net)});
  }
  {
    NetworkSim net(workers, model);
    rows.push_back({"Marsit (RAR)", ring_allreduce_timing(
                                        workers, d, marsit_wire(model), net)});
  }

  TextTable table({"method", "compute", "compression", "communication",
                   "iteration total", "wire bits/worker"});
  for (const Row& row : rows) {
    table.add_row({row.label, format_duration(compute_seconds),
                   format_duration(row.timing.compression_seconds_per_worker()),
                   format_duration(row.timing.communication_seconds()),
                   format_duration(compute_seconds +
                                   row.timing.completion_seconds),
                   format_bytes(row.timing.bits_per_worker / 8.0)});
  }
  table.print(std::cout);
  std::cout << "\nshape check: PSGD-RAR < PSGD-PS; SSDM-MAR transmission > "
               "SSDM-PS;\ncascading's compression bar dominates; Marsit has "
               "the smallest total.\n";
  return 0;
}
