// Eq. 2 ablation — why the ⊙ operator's Bernoulli probabilities must depend
// on the chain position.  Folding M workers whose positive fraction is k/M:
//
//   * Marsit's (m−1)/m ⁄ 1/m schedule keeps E[bit] = k/M exactly;
//   * a naive fair coin on disagreement (p = 1/2 at every hop) over-weights
//     late contributors and biases the aggregate.
#include <cmath>

#include "bench_util.hpp"
#include "compress/bit_vector.hpp"
#include "core/one_bit.hpp"
#include "util/rng.hpp"

using namespace marsit;
using namespace marsit::bench;

namespace {

/// One-bit fold with a FIXED disagreement coin (the naive alternative).
BitVector naive_fold(const std::vector<BitVector>& signs, Rng& rng) {
  BitVector aggregate = signs.front();
  for (std::size_t m = 1; m < signs.size(); ++m) {
    const BitVector& local = signs[m];
    BitVector result(aggregate.size());
    auto ra = aggregate.words();
    auto rb = local.words();
    auto out = result.words();
    for (std::size_t w = 0; w < out.size(); ++w) {
      const std::uint64_t v = rng.bernoulli_word(0.5);
      const std::uint64_t chosen = (ra[w] & v) | (rb[w] & ~v);
      out[w] = (ra[w] & rb[w]) | ((ra[w] ^ rb[w]) & chosen);
    }
    aggregate = std::move(result);
  }
  return aggregate;
}

}  // namespace

int main(int argc, char** argv) {
  quiet_logs();
  const std::size_t m = 8;
  const std::size_t reps = 64 * 8;
  const std::size_t trials = arg_override(argc, argv, "--trials", 3000);

  print_header(
      "Eq. 2 ablation: position-dependent Bernoulli vs naive fair coin "
      "(M=8)",
      {"Marsit: P(bit)=k/M exactly; naive 1/2-coin biases toward late "
       "contributors"});

  // Element block j: exactly j of the 8 workers are positive.
  std::vector<BitVector> signs(m, BitVector((m + 1) * reps));
  for (std::size_t w = 0; w < m; ++w) {
    for (std::size_t j = 0; j <= m; ++j) {
      if (w < j) {
        for (std::size_t r = 0; r < reps; ++r) {
          signs[w].set(j * reps + r, true);
        }
      }
    }
  }

  std::vector<double> marsit_freq(m + 1, 0.0), naive_freq(m + 1, 0.0);
  Rng rng(51);
  for (std::size_t t = 0; t < trials; ++t) {
    // Marsit fold (core/one_bit.hpp semantics, inline to share the rng).
    BitVector marsit = signs.front();
    for (std::size_t w = 1; w < m; ++w) {
      marsit = one_bit_combine(marsit, w, signs[w], 1, rng);
    }
    const BitVector naive = naive_fold(signs, rng);
    for (std::size_t j = 0; j <= m; ++j) {
      for (std::size_t r = 0; r < reps; ++r) {
        marsit_freq[j] += marsit.get(j * reps + r);
        naive_freq[j] += naive.get(j * reps + r);
      }
    }
  }

  TextTable table({"k (of 8 positive)", "exact k/M", "Marsit P(bit=1)",
                   "naive P(bit=1)", "naive bias"});
  const double n = static_cast<double>(trials * reps);
  for (std::size_t j = 0; j <= m; ++j) {
    const double exact = static_cast<double>(j) / static_cast<double>(m);
    const double marsit_p = marsit_freq[j] / n;
    const double naive_p = naive_freq[j] / n;
    table.add_row({std::to_string(j), format_fixed(exact, 3),
                   format_fixed(marsit_p, 3), format_fixed(naive_p, 3),
                   format_fixed(naive_p - exact, 3)});
  }
  table.print(std::cout);
  std::cout << "\nshape check: the Marsit column matches k/M to sampling "
               "noise; the naive\ncolumn is compressed toward 1/2 (late "
               "contributors override history).\n";
  return 0;
}
