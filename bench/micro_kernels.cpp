// Kernel benchmark harness: scalar vs word-parallel vs sharded timings for
// the hot bit-plane kernels (sign packing/unpacking, sign-sum accumulation,
// majority vote, the ⊙ combine), written as JSON for regression tracking.
//
//   micro_kernels [--out BENCH_kernels.json] [--sizes 1048576,16777216,...]
//                 [--reps 5] [--threads N]
//
// Per kernel and size the harness reports the best-of-reps seconds for
//   * scalar   — the original element-at-a-time loops (*_scalar),
//   * word     — the 64-elements-per-word kernels (compress/kernels.hpp),
//   * sharded  — the word kernels fanned over the thread pool in
//                ShardPlan chunks (the synchronization path's shape),
// plus the speedup ratios scalar/word and scalar/sharded.  The word kernels
// are bit-identical to the scalar references (tests/compress_kernels_test),
// so this file measures pure throughput, not accuracy trade-offs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "compress/kernels.hpp"
#include "compress/sign_codec.hpp"
#include "compress/sign_sum.hpp"
#include "core/one_bit.hpp"
#include "parallel/shard.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace marsit {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-reps wall time of fn(), with one untimed warmup call.
template <typename Fn>
double time_best(std::size_t reps, Fn&& fn) {
  fn();  // warmup: page in buffers, settle the pool
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    const double t0 = now_seconds();
    fn();
    const double t1 = now_seconds();
    best = std::min(best, t1 - t0);
  }
  return best;
}

struct KernelResult {
  std::string kernel;
  std::size_t elements = 0;
  double scalar_seconds = 0.0;
  double word_seconds = 0.0;
  double sharded_seconds = 0.0;
};

struct Options {
  std::string out = "BENCH_kernels.json";
  std::vector<std::size_t> sizes = {1u << 20, 1u << 24, 1u << 26};
  std::size_t reps = 5;
  std::size_t threads = 0;  // 0 = hardware concurrency
};

std::size_t parse_count(const std::string& text, const char* flag) {
  try {
    std::size_t consumed = 0;
    const std::size_t value = std::stoull(text, &consumed);
    if (consumed != text.size()) {
      throw std::invalid_argument(text);
    }
    return value;
  } catch (const std::exception&) {
    std::fprintf(stderr, "invalid value '%s' for %s\n", text.c_str(), flag);
    std::exit(2);
  }
}

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      opt.out = value();
    } else if (arg == "--sizes") {
      opt.sizes.clear();
      const std::string list = value();
      std::size_t pos = 0;
      while (pos < list.size()) {
        std::size_t next = list.find(',', pos);
        if (next == std::string::npos) {
          next = list.size();
        }
        opt.sizes.push_back(
            parse_count(list.substr(pos, next - pos), "--sizes"));
        pos = next + 1;
      }
    } else if (arg == "--reps") {
      opt.reps = parse_count(value(), "--reps");
    } else if (arg == "--threads") {
      opt.threads = parse_count(value(), "--threads");
    } else {
      std::fprintf(stderr,
                   "usage: micro_kernels [--out FILE] [--sizes N,N,...] "
                   "[--reps R] [--threads T]\n");
      std::exit(2);
    }
  }
  return opt;
}

/// The shared chunk geometry used by the sharded timings (matches
/// SyncConfig::shard_chunk_elements' default).
constexpr std::size_t kChunk = 1 << 16;

std::vector<KernelResult> run_size(std::size_t d, std::size_t reps,
                                   ThreadPool& pool) {
  std::vector<KernelResult> results;
  Rng rng(42);
  std::vector<float> g(d);
  fill_normal({g.data(), d}, rng, 0.0f, 1.0f);
  const std::span<const float> gs{g.data(), d};

  BitVector bits = pack_signs(gs);
  std::vector<float> out(d);
  const std::span<float> outs{out.data(), d};
  SignSum sum(d);
  const ShardPlan plan(d, kChunk);
  const auto sharded = [&](auto&& chunk_fn) {
    parallel_for(pool, plan.num_chunks(), [&](std::size_t c) {
      chunk_fn(plan.chunk(c));
    });
  };

  {
    KernelResult r;
    r.kernel = "pack_signs";
    r.elements = d;
    BitVector scratch(d);
    r.scalar_seconds =
        time_best(reps, [&] { scratch = pack_signs_scalar(gs); });
    r.word_seconds = time_best(
        reps, [&] { kernels::pack_signs_words(gs, scratch.words()); });
    r.sharded_seconds = time_best(reps, [&] {
      sharded([&](const Shard& s) {
        kernels::pack_signs_words(
            gs.subspan(s.begin, s.size()),
            scratch.words().subspan(s.word_begin(), s.num_words()));
      });
    });
    results.push_back(r);
  }

  {
    KernelResult r;
    r.kernel = "unpack_signs";
    r.elements = d;
    r.scalar_seconds =
        time_best(reps, [&] { unpack_signs_scalar(bits, 0.5f, outs); });
    r.word_seconds = time_best(
        reps, [&] { kernels::unpack_signs_words(bits.words(), 0.5f, outs); });
    r.sharded_seconds = time_best(reps, [&] {
      sharded([&](const Shard& s) {
        kernels::unpack_signs_words(
            bits.words().subspan(s.word_begin(), s.num_words()), 0.5f,
            outs.subspan(s.begin, s.size()));
      });
    });
    results.push_back(r);
  }

  {
    KernelResult r;
    r.kernel = "accumulate_signs";
    r.elements = d;
    r.scalar_seconds =
        time_best(reps, [&] { accumulate_signs_scalar(bits, 0.5f, outs); });
    r.word_seconds = time_best(reps, [&] {
      kernels::accumulate_signs_words(bits.words(), 0.5f, outs);
    });
    r.sharded_seconds = time_best(reps, [&] {
      sharded([&](const Shard& s) {
        kernels::accumulate_signs_words(
            bits.words().subspan(s.word_begin(), s.num_words()), 0.5f,
            outs.subspan(s.begin, s.size()));
      });
    });
    results.push_back(r);
  }

  {
    KernelResult r;
    r.kernel = "signsum_accumulate";
    r.elements = d;
    r.scalar_seconds = time_best(reps, [&] { sum.accumulate_scalar(bits); });
    r.word_seconds = time_best(reps, [&] { sum.accumulate(bits); });
    r.sharded_seconds = time_best(reps, [&] {
      sharded([&](const Shard& s) {
        kernels::accumulate_counts_words(
            bits.words().subspan(s.word_begin(), s.num_words()),
            sum.values_mut().subspan(s.begin, s.size()));
      });
    });
    results.push_back(r);
  }

  {
    KernelResult r;
    r.kernel = "signsum_majority";
    r.elements = d;
    BitVector scratch(d);
    r.scalar_seconds = time_best(reps, [&] { scratch = sum.majority_scalar(); });
    r.word_seconds = time_best(reps, [&] { scratch = sum.majority(); });
    r.sharded_seconds = time_best(reps, [&] {
      sharded([&](const Shard& s) {
        kernels::majority_words(
            sum.values().subspan(s.begin, s.size()),
            scratch.words().subspan(s.word_begin(), s.num_words()));
      });
    });
    results.push_back(r);
  }

  {
    // ⊙ has no scalar/word split (it is word-parallel by construction);
    // "scalar" is the allocating per-hop form the reduction chains used
    // before the in-place variants, "word" the in-place combine.
    KernelResult r;
    r.kernel = "one_bit_combine";
    r.elements = d;
    Rng combine_rng(7);
    BitVector other = pack_signs(gs);
    r.scalar_seconds = time_best(reps, [&] {
      BitVector fresh = one_bit_combine(bits, 3, other, 1, combine_rng);
      (void)fresh;
    });
    r.word_seconds = time_best(
        reps, [&] { one_bit_combine_into(bits, 3, other, 1, combine_rng); });
    r.sharded_seconds = time_best(reps, [&] {
      sharded([&](const Shard& s) {
        Rng chunk_rng(derive_seed(11, s.index));
        one_bit_combine_words(
            bits.words().subspan(s.word_begin(), s.num_words()), 3,
            other.words().subspan(s.word_begin(), s.num_words()), 1,
            chunk_rng);
      });
    });
    results.push_back(r);
  }

  return results;
}

void write_json(const Options& opt, const std::vector<KernelResult>& results,
                std::size_t threads) {
  std::FILE* f = std::fopen(opt.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", opt.out.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_kernels\",\n");
  std::fprintf(f, "  \"pool_threads\": %zu,\n", threads);
  std::fprintf(f, "  \"chunk_elements\": %zu,\n",
               static_cast<std::size_t>(kChunk));
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const KernelResult& r = results[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"elements\": %zu, "
                 "\"scalar_seconds\": %.9f, \"word_seconds\": %.9f, "
                 "\"sharded_seconds\": %.9f, \"word_speedup\": %.3f, "
                 "\"sharded_speedup\": %.3f}%s\n",
                 r.kernel.c_str(), r.elements, r.scalar_seconds,
                 r.word_seconds, r.sharded_seconds,
                 r.scalar_seconds / r.word_seconds,
                 r.scalar_seconds / r.sharded_seconds,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace marsit

int main(int argc, char** argv) {
  using namespace marsit;
  const Options opt = parse_options(argc, argv);
  ThreadPool pool(opt.threads);
  std::vector<KernelResult> all;
  for (const std::size_t d : opt.sizes) {
    std::fprintf(stderr, "timing %zu elements...\n", d);
    const std::vector<KernelResult> batch = run_size(d, opt.reps, pool);
    for (const KernelResult& r : batch) {
      std::fprintf(stderr, "  %-18s scalar %.4fs  word %.4fs (%.1fx)  "
                   "sharded %.4fs (%.1fx)\n",
                   r.kernel.c_str(), r.scalar_seconds, r.word_seconds,
                   r.scalar_seconds / r.word_seconds, r.sharded_seconds,
                   r.scalar_seconds / r.sharded_seconds);
      all.push_back(r);
    }
  }
  write_json(opt, all, pool.num_threads());
  std::fprintf(stderr, "wrote %s\n", opt.out.c_str());
  return 0;
}
