// google-benchmark microbenchmarks for the hot kernels: packed Bernoulli
// generation, the ⊙ combine, sign packing, SSDM's stochastic sign, Elias
// coding, GEMM, and the collective timing schedules themselves.
#include <benchmark/benchmark.h>

#include <vector>

#include "collectives/timing.hpp"
#include "compress/elias.hpp"
#include "compress/sign_codec.hpp"
#include "core/one_bit.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace marsit {
namespace {

void BM_BernoulliWord(benchmark::State& state) {
  Rng rng(1);
  const double p = 1.0 / 7.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.bernoulli_word(p));
  }
}
BENCHMARK(BM_BernoulliWord);

void BM_OneBitCombine(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  BitVector a(d), b(d);
  a.fill(true);
  for (std::size_t i = 0; i < d; i += 3) {
    b.set(i, true);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(one_bit_combine(a, 3, b, 1, rng));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(d));
}
BENCHMARK(BM_OneBitCombine)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_PackSigns(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  std::vector<float> g(d);
  fill_normal({g.data(), d}, rng, 0.0f, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pack_signs({g.data(), d}));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(d));
}
BENCHMARK(BM_PackSigns)->Arg(1 << 16)->Arg(1 << 20);

void BM_SsdmPack(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  std::vector<float> g(d);
  fill_normal({g.data(), d}, rng, 0.0f, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssdm_pack({g.data(), d}, rng));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(d));
}
BENCHMARK(BM_SsdmPack)->Arg(1 << 16);

void BM_EliasGammaEncodeSigned(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  std::vector<std::int32_t> values(d);
  for (auto& v : values) {
    v = static_cast<std::int32_t>(rng.next_below(17)) - 8;
  }
  for (auto _ : state) {
    BitWriter writer;
    benchmark::DoNotOptimize(
        elias_gamma_encode_signed({values.data(), d}, writer));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(d));
}
BENCHMARK(BM_EliasGammaEncodeSigned)->Arg(1 << 14);

void BM_Matmul(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  std::vector<float> a(n * n), b(n * n), c(n * n);
  fill_normal({a.data(), a.size()}, rng, 0.0f, 1.0f);
  fill_normal({b.data(), b.size()}, rng, 0.0f, 1.0f);
  for (auto _ : state) {
    matmul({a.data(), a.size()}, {b.data(), b.size()}, {c.data(), c.size()},
           n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128);

void BM_RingTimingSchedule(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const CostModel model;
  NetworkSim net(m, model);
  const WireFormat wire = marsit_wire(model);
  for (auto _ : state) {
    net.reset();
    benchmark::DoNotOptimize(
        ring_allreduce_timing(m, 1 << 20, wire, net));
  }
}
BENCHMARK(BM_RingTimingSchedule)->Arg(8)->Arg(32)->Arg(128);

void BM_TorusTimingSchedule(benchmark::State& state) {
  const std::size_t side = static_cast<std::size_t>(state.range(0));
  const CostModel model;
  NetworkSim net(side * side, model);
  const WireFormat wire = marsit_wire(model);
  for (auto _ : state) {
    net.reset();
    benchmark::DoNotOptimize(
        torus_allreduce_timing(side, side, 1 << 20, wire, net));
  }
}
BENCHMARK(BM_TorusTimingSchedule)->Arg(4)->Arg(8);

}  // namespace
}  // namespace marsit

BENCHMARK_MAIN();
