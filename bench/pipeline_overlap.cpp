// Chunked compute/comm overlap bench: prices one Marsit ring round at
// training-scale parameter counts, serial (sum-of-stages) vs pipelined
// (max-of-stages), across pipeline chunk sizes — the DESIGN.md §12 sweep.
//
//   pipeline_overlap [--out BENCH_pipeline.json] [--workers 32]
//                    [--quick] [--min-speedup X]
//
// The round being priced: every worker computes a d-parameter gradient
// (modeled as 6·d·batch flops, batch 64, per-chunk readiness proportional
// to the chunk's position — gradients become available bucket by bucket as
// the backward pass retires layers), packs sign chunks, runs one ring
// all-reduce per chunk on the shared fabric, and folds finished chunks.
// Serial reference: compute, then Σ_c (pack_c + ring_c + fold_c) with each
// sub-collective on an idle fabric.  Overlapped: the three-lane pipeline of
// pipelined_collective_timing, pack gated on per-chunk gradient readiness.
//
// Pure cost-model arithmetic — no gradient data, no wall-clock, so the
// emitted JSON is deterministic and diffable.  `--min-speedup X` exits
// non-zero when any swept parameter count's best speedup lands below X;
// CI's bench-smoke job pins the committed floor with `--quick` (16M only).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "collectives/timing.hpp"
#include "net/cost_model.hpp"
#include "net/network_sim.hpp"
#include "parallel/shard.hpp"

namespace marsit {
namespace {

/// Modeled minibatch per worker: together with the 6·d·batch flop rule this
/// puts compute within a small factor of the 64M ring's transfer time, the
/// regime where overlap pays (a compute-dominated or wire-dominated round
/// pipelines to its max lane either way).
constexpr double kBatch = 64.0;

struct Options {
  std::string out = "BENCH_pipeline.json";
  std::size_t workers = 32;
  bool quick = false;          // 16M only (CI smoke)
  double min_speedup = 0.0;    // 0 = report only
};

struct SweepRow {
  std::size_t params = 0;
  std::size_t chunk_elements = 0;
  std::size_t num_chunks = 0;
  double compute_seconds = 0.0;
  double serial_seconds = 0.0;
  double overlapped_seconds = 0.0;
  double speedup = 0.0;
};

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      opt.out = value();
    } else if (arg == "--workers") {
      opt.workers = static_cast<std::size_t>(std::atol(value().c_str()));
    } else if (arg == "--quick") {
      opt.quick = true;
    } else if (arg == "--min-speedup") {
      opt.min_speedup = std::atof(value().c_str());
    } else {
      std::fprintf(stderr,
                   "usage: pipeline_overlap [--out FILE] [--workers M] "
                   "[--quick] [--min-speedup X]\n");
      std::exit(2);
    }
  }
  if (opt.workers < 2) {
    std::fprintf(stderr, "--workers must be >= 2\n");
    std::exit(2);
  }
  return opt;
}

/// One (parameter count, chunk size) cell of the sweep.
SweepRow price_round(std::size_t d, std::size_t chunk_elements,
                     std::size_t workers, const CostModel& model) {
  SweepRow row;
  row.params = d;
  row.chunk_elements = chunk_elements;
  row.compute_seconds = model.compute_seconds(6.0 * static_cast<double>(d) *
                                              kBatch);

  // Per-chunk gradient readiness: the backward pass retires the chunk grid
  // in order, so chunk c's payload exists once the compute prefix covering
  // it has run.
  const ShardPlan plan(d, chunk_elements);
  row.num_chunks = plan.num_chunks();
  std::vector<double> ready(plan.num_chunks());
  for (std::size_t c = 0; c < plan.num_chunks(); ++c) {
    const Shard shard = plan.chunk(c);
    ready[c] = row.compute_seconds *
               (static_cast<double>(shard.begin + shard.size()) /
                static_cast<double>(d));
  }

  NetworkSim net(workers, model);
  const CollectiveTiming timing = pipelined_collective_timing(
      d, chunk_elements, marsit_wire(model), net,
      [workers](std::size_t /*chunk_index*/, std::size_t elements,
                const WireFormat& wire, NetworkSim& chunk_net,
                double start_time) {
        return ring_allreduce_timing(workers, elements, wire, chunk_net,
                                     start_time);
      },
      {ready.data(), ready.size()});

  // Serial reference: compute finishes, then the chunks run strictly
  // pack → transfer → fold back to back (the reference excludes readiness
  // gaps, so compute is added once here).  Overlapped: the pipeline's
  // completion already includes the compute gating through `ready`.
  row.serial_seconds = row.compute_seconds + timing.serial_completion_seconds;
  row.overlapped_seconds = timing.completion_seconds;
  row.speedup = row.serial_seconds / row.overlapped_seconds;
  return row;
}

void write_json(const Options& opt, const std::vector<SweepRow>& rows,
                const std::vector<SweepRow>& best, double floor) {
  std::FILE* f = std::fopen(opt.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", opt.out.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"pipeline_overlap\",\n");
  std::fprintf(f, "  \"workers\": %zu,\n", opt.workers);
  std::fprintf(f, "  \"speedup_floor\": %.2f,\n", floor);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::fprintf(f,
                 "    {\"params\": %zu, \"chunk_elements\": %zu, "
                 "\"num_chunks\": %zu, \"compute_seconds\": %.9f, "
                 "\"serial_seconds\": %.9f, \"overlapped_seconds\": %.9f, "
                 "\"speedup\": %.4f}%s\n",
                 r.params, r.chunk_elements, r.num_chunks, r.compute_seconds,
                 r.serial_seconds, r.overlapped_seconds, r.speedup,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"best\": [\n");
  for (std::size_t i = 0; i < best.size(); ++i) {
    const SweepRow& r = best[i];
    std::fprintf(f,
                 "    {\"params\": %zu, \"chunk_elements\": %zu, "
                 "\"speedup\": %.4f}%s\n",
                 r.params, r.chunk_elements, r.speedup,
                 i + 1 < best.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace marsit

int main(int argc, char** argv) {
  using namespace marsit;
  const Options opt = parse_options(argc, argv);
  const CostModel model;  // repo-wide default (DESIGN.md §2)

  std::vector<std::size_t> param_counts = {std::size_t{1} << 24};  // 16M
  if (!opt.quick) {
    param_counts.push_back(std::size_t{1} << 26);  // 64M
  }
  // The committed regression floor, written into the JSON so CI can extract
  // it: conservative against the 16M quick sweep's best (≈1.2×); the 64M
  // acceptance figure (≥1.3×) is asserted from the full committed JSON.
  const double kFloor = 1.10;

  std::vector<SweepRow> rows;
  std::vector<SweepRow> best;
  bool below_floor = false;
  for (const std::size_t d : param_counts) {
    SweepRow best_row;
    // Chunk sweep from fine (α-dominated: too many per-chunk latencies) to
    // the whole payload (a single chunk: nothing overlaps, speedup 1.0).
    std::vector<std::size_t> sweep;
    for (const std::size_t chunk :
         {std::size_t{1} << 21, std::size_t{1} << 22, std::size_t{1} << 23,
          std::size_t{1} << 24, std::size_t{1} << 25}) {
      if (chunk < d) {
        sweep.push_back(chunk);
      }
    }
    sweep.push_back(d);  // single-chunk baseline row
    for (const std::size_t chunk : sweep) {
      const SweepRow row = price_round(d, chunk, opt.workers, model);
      std::fprintf(stderr,
                   "d=%zu chunk=%zu (%zu chunks): serial %.4fs  "
                   "overlapped %.4fs  speedup %.3fx\n",
                   row.params, row.chunk_elements, row.num_chunks,
                   row.serial_seconds, row.overlapped_seconds, row.speedup);
      rows.push_back(row);
      if (row.speedup > best_row.speedup) {
        best_row = row;
      }
    }
    best.push_back(best_row);
    if (opt.min_speedup > 0.0 && best_row.speedup < opt.min_speedup) {
      std::fprintf(stderr,
                   "FAIL: best speedup %.4fx at %zu params is below the "
                   "--min-speedup floor %.4fx\n",
                   best_row.speedup, best_row.params, opt.min_speedup);
      below_floor = true;
    }
  }

  write_json(opt, rows, best, kFloor);
  std::fprintf(stderr, "wrote %s\n", opt.out.c_str());
  return below_floor ? 1 : 0;
}
