// Global-compensation ablation (§4.1.3) — Marsit with and without the
// compensation vectors, with and without periodic full-precision rounds, on
// the digit task.
//
// What compensation does: it makes the sequence exactly track the
// full-precision SGD trajectory in expectation (the paper's auxiliary
// ỹ_t = x̃_t − c̄_t argument), recovering the magnitude information the
// sign transmission discards.  The cost is pacing: the compensated updates
// advance at the local-SGD rate η_l·‖u‖ instead of the sign-descent rate
// η_s per element.  In the paper's regime (8192-sample batches, thousands
// of rounds) that trade wins on final accuracy; at this reproduction's
// micro-batches and short budgets the uncompensated sign descent converges
// faster at fixed rounds — the bench reports both so the trade-off is
// visible rather than asserted.
#include "bench_util.hpp"
#include "data/synthetic_digits.hpp"
#include "nn/models.hpp"

using namespace marsit;
using namespace marsit::bench;

int main(int argc, char** argv) {
  quiet_logs();
  const std::size_t rounds = arg_override(argc, argv, "--rounds", 240);

  print_header(
      "Ablation: Marsit's global compensation mechanism (digits/MLP)",
      {"compensation makes Marsit track exact SGD (unbiased, the Thm-1 "
       "guarantee) at SGD pace;",
       "uncompensated sign descent moves eta_s/element/round - faster at "
       "fixed rounds, no guarantee"});

  SyntheticDigits digits;
  auto factory = [&digits] {
    return make_mlp(digits.sample_size(), {48}, digits.num_classes());
  };

  struct Variant {
    std::string label;
    bool use_compensation;
    std::size_t k;
  };
  const std::vector<Variant> variants = {
      {"Marsit (comp, K=rounds/4)", true, rounds / 4},
      {"Marsit (comp, K=inf)", true, 0},
      {"Marsit (no comp, K=rounds/4)", false, rounds / 4},
      {"Marsit (no comp, K=inf)", false, 0},
  };

  TextTable table({"variant", "final acc (%)", "best acc (%)"});
  for (const Variant& variant : variants) {
    MarsitOptions options;
    options.eta_s = 2e-3f;
    options.full_precision_period = variant.k;
    options.full_precision_max_norm = 0.5f;
    options.use_compensation = variant.use_compensation;
    MarsitSync strategy(ring_config(4), options);

    TrainerConfig config;
    config.batch_size_per_worker = 32;
    config.eta_l = 0.05f;
    config.rounds = rounds;
    config.eval_interval = rounds / 6;
    config.eval_samples = 512;
    config.seed = 14;

    DistributedTrainer trainer(digits, factory, strategy, config);
    const TrainResult result = trainer.train();
    table.add_row({variant.label,
                   format_fixed(100.0 * result.final_test_accuracy, 1),
                   format_fixed(100.0 * result.best_test_accuracy, 1)});
  }
  table.print(std::cout);
  std::cout << "\nshape check: all variants learn; the compensated rows "
               "advance at the exact-SGD\npace (slower at this fixed budget "
               "but carrying Theorem 1's guarantee), the\nuncompensated rows "
               "at the faster sign-descent pace (no guarantee).  The\npaper's "
               "large-batch regime is where the compensated trade wins on "
               "final\naccuracy (see EXPERIMENTS.md).\n";
  return 0;
}
