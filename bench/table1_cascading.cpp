// Table 1 — Training "MNIST over AlexNet": cascading compression vs no
// compression at M ∈ {3, 8}.  The paper reports rounds-to-converge, best
// accuracy over a stepsize grid {0.03, 0.01, 0.005}, and wall time; its
// findings: cascading needs more rounds and loses accuracy at M=3 and
// *diverges* at M=8, while non-compressed training improves with more
// workers.
//
// Reproduction: SyntheticDigits + AlexNetMini (DESIGN.md §2), simulated
// time, convergence target 97 % test accuracy.
#include "bench_util.hpp"
#include "data/synthetic_digits.hpp"
#include "nn/models.hpp"

using namespace marsit;
using namespace marsit::bench;

namespace {

struct RunOutcome {
  std::size_t rounds = 0;
  double best_accuracy = 0.0;
  double sim_minutes = 0.0;
  bool converged = false;
  bool diverged = false;
};

RunOutcome run(SyncMethod method, std::size_t workers, float eta_l,
               std::size_t max_rounds) {
  SyntheticDigits digits;
  auto factory = [&digits] {
    return make_alexnet_mini(digits.image_dims(), digits.num_classes());
  };
  auto strategy = make_sync_strategy(method, ring_config(workers));

  TrainerConfig config;
  config.batch_size_per_worker = 16;
  config.eta_l = eta_l;
  config.rounds = max_rounds;
  config.eval_interval = 10;
  config.eval_samples = 512;
  config.seed = 9;
  config.stop_accuracy = 0.97;

  DistributedTrainer trainer(digits, factory, *strategy, config);
  const TrainResult result = trainer.train();

  RunOutcome outcome;
  outcome.rounds = result.rounds_completed;
  outcome.best_accuracy = result.best_test_accuracy;
  outcome.sim_minutes = result.sim_seconds / 60.0;
  outcome.converged = result.reached_stop_accuracy;
  outcome.diverged = result.diverged;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  quiet_logs();
  const std::size_t max_rounds = arg_override(argc, argv, "--rounds", 300);

  print_header(
      "Table 1: cascading compression vs no compression (digits/AlexNet-mini)",
      {"cascading M=3: 187 rounds, 87.2 % — M=8: 1K+ rounds, divergence",
       "no compression M=3: 129 rounds, 99.1 % — M=8: 76 rounds, 99.2 %"});

  const std::vector<float> stepsizes = {0.03f, 0.01f, 0.005f};

  TextTable table({"scheme", "M", "rounds", "best acc (%)", "sim time",
                   "status"});
  for (const auto& [label, method] :
       std::vector<std::pair<std::string, SyncMethod>>{
           {"cascading compression", SyncMethod::kCascading},
           {"no compression", SyncMethod::kPsgd}}) {
    for (std::size_t workers : {3u, 8u}) {
      // Best result over the stepsize grid, like the paper's protocol:
      // prefer converged runs with fewer rounds, else highest accuracy.
      RunOutcome best;
      bool have_converged = false;
      for (float eta_l : stepsizes) {
        const RunOutcome outcome = run(method, workers, eta_l, max_rounds);
        const bool better =
            outcome.converged
                ? (!have_converged || outcome.rounds < best.rounds)
                : (!have_converged &&
                   outcome.best_accuracy > best.best_accuracy);
        if (better) {
          best = outcome;
          have_converged = have_converged || outcome.converged;
        }
      }
      std::string status = best.converged ? "converged"
                           : best.diverged ? "DIVERGED"
                                           : "not converged";
      table.add_row({label, std::to_string(workers),
                     best.converged ? std::to_string(best.rounds)
                                    : std::to_string(max_rounds) + "+",
                     format_fixed(100.0 * best.best_accuracy, 1),
                     format_duration(best.sim_minutes * 60.0), status});
    }
  }
  table.print(std::cout);
  std::cout << "\nshape check: cascading needs more rounds / lower accuracy "
               "than PSGD,\nand degrades (or diverges) as M grows while PSGD "
               "improves.\n";
  return 0;
}
