// Fault sweep — degradation curves for the synchronization methods under
// injected faults.
//
// Not a paper figure: the paper assumes a healthy fleet.  This bench maps
// how gracefully each method degrades when the fleet is not healthy, using
// the seeded FaultPlan layer (net/fault_plan.hpp):
//
//   * dropout      — every worker sits out each round w.p. p; the reduction
//                    re-forms over the survivors;
//   * packet-loss  — each transmission attempt is lost w.p. p and retried
//                    with exponential backoff, inflating both completion
//                    time and wire traffic;
//   * straggler    — one node's links serialize `s`× slower, stretching the
//                    critical path of every schedule that touches it.
//
// For every (fault type, severity, method) cell a short training run records
// final accuracy, simulated time, degraded-round counts and retransmission
// totals.  Severity 0 is the fault-free baseline, so each method's row set
// is a degradation curve.  Output: a human-readable table on stdout plus a
// machine-readable JSON file (--out PATH, default fault_sweep.json).
#include <fstream>

#include "bench_util.hpp"
#include "data/synthetic_digits.hpp"
#include "nn/models.hpp"
#include "obs/json_writer.hpp"

using namespace marsit;
using namespace marsit::bench;

namespace {

struct FaultSpec {
  std::string type;                // "dropout" | "packet-loss" | "straggler"
  std::vector<double> severities;  // first entry is the fault-free baseline
};

FaultPlan make_plan(const FaultSpec& spec, double severity,
                    std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  if (spec.type == "dropout") {
    plan.dropout_rate = severity;
  } else if (spec.type == "packet-loss") {
    plan.packet_loss = severity;
  } else if (spec.type == "straggler") {
    if (severity > 1.0) {
      plan.stragglers.push_back({1, severity});
    }
  } else {
    MARSIT_CHECK(false) << "unknown fault type " << spec.type;
  }
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  quiet_logs();
  const std::size_t rounds = arg_override(argc, argv, "--rounds", 60);
  const std::size_t workers = 8;

  std::string out_path = "fault_sweep.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--out") {
      out_path = argv[i + 1];
    }
  }

  print_header(
      "Fault sweep: graceful degradation under injected faults",
      {"not a paper figure; severity 0 of each fault type is the healthy "
       "baseline",
       "dropout re-forms the reduction over survivors; packet loss retries "
       "with backoff;",
       "a straggler stretches every schedule that routes through it"});

  const std::vector<FaultSpec> faults = {
      {"dropout", {0.0, 0.1, 0.25, 0.4}},
      {"packet-loss", {0.0, 0.02, 0.05, 0.1}},
      {"straggler", {1.0, 2.0, 4.0, 8.0}},
  };
  // Five of the six Table 2 methods (Marsit-100 behaves like Marsit here).
  std::vector<MethodSpec> methods = paper_method_lineup();
  methods.erase(methods.begin() + 4);  // drop Marsit-100

  SyntheticDigits digits;
  auto factory = [&digits] {
    return make_mlp(digits.sample_size(), {48}, digits.num_classes());
  };

  TextTable table({"fault", "severity", "method", "final acc (%)", "sim time",
                   "degraded rounds", "mean active", "retx (Mb)"});
  std::ofstream out(out_path);
  MARSIT_CHECK(out.good()) << "cannot open " << out_path;
  obs::JsonWriter json(out, /*pretty=*/true);
  json.begin_object();
  json.kv("rounds", rounds);
  json.kv("workers", workers);
  json.key("curves");
  json.begin_array();

  for (const FaultSpec& fault : faults) {
    for (const double severity : fault.severities) {
      for (const MethodSpec& method : methods) {
        SyncConfig sync_config = ring_config(workers);
        sync_config.fault_plan = make_plan(fault, severity, /*seed=*/91);
        auto strategy = build_method(method, sync_config, 2e-3f);

        TrainerConfig config;
        config.batch_size_per_worker = 16;
        config.optimizer = OptimizerKind::kMomentum;
        config.clip_grad_norm = 2.0f;
        config.eta_l = 0.05f;
        config.rounds = rounds;
        config.eval_interval = 0;  // evaluate once, at the end
        config.eval_samples = 512;
        config.seed = 10;

        DistributedTrainer trainer(digits, factory, *strategy, config);
        const TrainResult result = trainer.train();

        const double retx_megabits =
            result.total_retransmitted_wire_bits / 1e6;
        table.add_row({fault.type, format_fixed(severity, 2), method.label,
                       format_fixed(100.0 * result.final_test_accuracy, 1),
                       format_duration(result.sim_seconds),
                       std::to_string(result.degraded_rounds),
                       format_fixed(result.mean_active_workers, 2),
                       format_fixed(retx_megabits, 2)});

        json.begin_object();
        json.kv("fault", fault.type);
        json.kv("severity", severity);
        json.kv("method", method.label);
        json.kv("final_accuracy", result.final_test_accuracy);
        json.kv("sim_seconds", result.sim_seconds);
        json.kv("total_wire_bits", result.total_wire_bits);
        json.kv("degraded_rounds", result.degraded_rounds);
        json.kv("mean_active_workers", result.mean_active_workers);
        json.kv("retransmitted_wire_bits",
                result.total_retransmitted_wire_bits);
        json.kv("retransmissions", result.total_retransmissions);
        json.kv("diverged", result.diverged);
        json.end_object();
      }
    }
  }
  json.end_array();
  json.end_object();
  out << "\n";

  table.print(std::cout);
  std::cout << "\nJSON degradation curves written to " << out_path << "\n";
  std::cout << "shape check: severity 0 matches the healthy run; accuracy "
               "decays and sim\ntime inflates as severity grows, with Marsit "
               "degrading gracefully rather than\ndiverging.\n";
  return 0;
}
