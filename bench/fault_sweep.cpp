// Fault sweep — degradation curves for the synchronization methods under
// injected faults.
//
// Not a paper figure: the paper assumes a healthy fleet.  This bench maps
// how gracefully each method degrades when the fleet is not healthy, using
// the seeded FaultPlan layer (net/fault_plan.hpp):
//
//   * dropout      — every worker sits out each round w.p. p; the reduction
//                    re-forms over the survivors;
//   * packet-loss  — each transmission attempt is lost w.p. p and retried
//                    with exponential backoff, inflating both completion
//                    time and wire traffic;
//   * straggler    — one node's links serialize `s`× slower, stretching the
//                    critical path of every schedule that touches it;
//   * corruption   — each attempt delivers a corrupted payload w.p. p; a
//                    CRC32 footer (+32 wire bits per message) detects it and
//                    the sender retries; past the retry budget the sender is
//                    demoted to absent-for-the-round (never folded into ⊙);
//   * rejoin       — two staggered explicit drop-out windows, replayed with
//                    the rejoin-at-flush barrier off (severity 0, workers
//                    re-enter the instant their window closes, carrying
//                    compensation) and on (severity 1, re-entry waits for
//                    the next K-round full-precision flush, where the global
//                    state is identical on every worker).
//
// For every (fault type, severity, method) cell a short training run records
// final accuracy, simulated time, degraded-round counts, retransmission and
// rejoin/demotion totals.  Severity 0 of the probabilistic faults is the
// fault-free baseline, so each method's row set is a degradation curve.
// Output: a human-readable table on stdout plus a machine-readable JSON
// file (--out PATH, default fault_sweep.json).
#include <fstream>

#include "bench_util.hpp"
#include "data/synthetic_digits.hpp"
#include "nn/models.hpp"
#include "obs/json_writer.hpp"

using namespace marsit;
using namespace marsit::bench;

namespace {

struct FaultSpec {
  std::string type;  // "dropout" | "packet-loss" | "straggler" | "corruption"
  std::vector<double> severities;  // first entry is the fault-free baseline
};

FaultPlan make_plan(const FaultSpec& spec, double severity,
                    std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  if (spec.type == "dropout") {
    plan.dropout_rate = severity;
  } else if (spec.type == "packet-loss") {
    plan.packet_loss = severity;
  } else if (spec.type == "straggler") {
    if (severity > 1.0) {
      plan.stragglers.push_back({1, severity});
    }
  } else if (spec.type == "corruption") {
    plan.corruption_rate = severity;
    // A short retry budget so saturating corruption actually demotes senders
    // within the sweep (the 16-attempt default makes demotion astronomically
    // rare even at severity 0.5).
    plan.max_retries = 3;
  } else {
    MARSIT_CHECK(false) << "unknown fault type " << spec.type;
  }
  return plan;
}

/// Two staggered one-worker outages, deliberately unaligned with the K-round
/// flush so the gated variant (severity 1) has to wait for the next barrier.
FaultPlan make_rejoin_plan(bool at_flush, std::size_t rounds,
                           std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  const std::size_t third = rounds / 3;
  plan.dropouts.push_back({2, third / 2 + 1, third + 1, at_flush});
  plan.dropouts.push_back({5, third + 2, 2 * third + 2, at_flush});
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  quiet_logs();
  const std::size_t rounds = arg_override(argc, argv, "--rounds", 60);
  const std::size_t workers = 8;

  std::string out_path = "fault_sweep.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--out") {
      out_path = argv[i + 1];
    }
  }

  print_header(
      "Fault sweep: graceful degradation under injected faults",
      {"not a paper figure; severity 0 of each fault type is the healthy "
       "baseline",
       "dropout re-forms the reduction over survivors; packet loss and "
       "corruption retry",
       "with backoff; a straggler stretches every schedule that routes "
       "through it;",
       "the rejoin sweep replays fixed outages with the flush barrier "
       "off/on"});

  const std::vector<FaultSpec> faults = {
      {"dropout", {0.0, 0.1, 0.25, 0.4}},
      {"packet-loss", {0.0, 0.02, 0.05, 0.1}},
      {"straggler", {1.0, 2.0, 4.0, 8.0}},
      {"corruption", {0.0, 0.05, 0.2, 0.5}},
  };
  // Five of the six Table 2 methods (Marsit-100 behaves like Marsit here).
  std::vector<MethodSpec> methods = paper_method_lineup();
  methods.erase(methods.begin() + 4);  // drop Marsit-100

  SyntheticDigits digits;
  auto factory = [&digits] {
    return make_mlp(digits.sample_size(), {48}, digits.num_classes());
  };

  TextTable table({"fault", "severity", "method", "final acc (%)", "sim time",
                   "degraded rounds", "mean active", "retx (Mb)", "rejoins"});
  std::ofstream out(out_path);
  MARSIT_CHECK(out.good()) << "cannot open " << out_path;
  obs::JsonWriter json(out, /*pretty=*/true);
  json.begin_object();
  json.kv("rounds", rounds);
  json.kv("workers", workers);
  json.key("curves");
  json.begin_array();

  const auto run_cell = [&](const std::string& fault, double severity,
                            const MethodSpec& method, const FaultPlan& plan) {
    SyncConfig sync_config = ring_config(workers);
    sync_config.fault_plan = plan;
    auto strategy = build_method(method, sync_config, 2e-3f);

    TrainerConfig config;
    config.batch_size_per_worker = 16;
    config.optimizer = OptimizerKind::kMomentum;
    config.clip_grad_norm = 2.0f;
    config.eta_l = 0.05f;
    config.rounds = rounds;
    config.eval_interval = 0;  // evaluate once, at the end
    config.eval_samples = 512;
    config.seed = 10;

    DistributedTrainer trainer(digits, factory, *strategy, config);
    const TrainResult result = trainer.train();

    const double retx_megabits = result.total_retransmitted_wire_bits / 1e6;
    // total_rejoins already includes the flush-gated subset.
    const std::size_t rejoins = result.total_rejoins;
    table.add_row({fault, format_fixed(severity, 2), method.label,
                   format_fixed(100.0 * result.final_test_accuracy, 1),
                   format_duration(result.sim_seconds),
                   std::to_string(result.degraded_rounds),
                   format_fixed(result.mean_active_workers, 2),
                   format_fixed(retx_megabits, 2), std::to_string(rejoins)});

    json.begin_object();
    json.kv("fault", fault);
    json.kv("severity", severity);
    json.kv("method", method.label);
    json.kv("final_accuracy", result.final_test_accuracy);
    json.kv("sim_seconds", result.sim_seconds);
    json.kv("total_wire_bits", result.total_wire_bits);
    json.kv("degraded_rounds", result.degraded_rounds);
    json.kv("mean_active_workers", result.mean_active_workers);
    json.kv("retransmitted_wire_bits", result.total_retransmitted_wire_bits);
    json.kv("retransmissions", result.total_retransmissions);
    json.kv("rejoins", result.total_rejoins);
    json.kv("flush_rejoins", result.total_flush_rejoins);
    json.kv("corruption_demotions", result.total_corruption_demotions);
    json.kv("diverged", result.diverged);
    json.end_object();
  };

  for (const FaultSpec& fault : faults) {
    for (const double severity : fault.severities) {
      for (const MethodSpec& method : methods) {
        run_cell(fault.type, severity, method,
                 make_plan(fault, severity, /*seed=*/91));
      }
    }
  }

  // Rejoin sweep (same JSON row shape): the Table 2 "Marsit" entry has no
  // flush period, so the gated variant would degenerate to the plain one —
  // give Marsit K = 10 here, which puts two flush barriers after the
  // outage windows within the default 60 rounds.
  std::vector<MethodSpec> rejoin_methods = methods;
  for (MethodSpec& method : rejoin_methods) {
    if (method.method == SyncMethod::kMarsit) {
      method.full_precision_period = 10;
    }
  }
  for (const double severity : {0.0, 1.0}) {
    for (const MethodSpec& method : rejoin_methods) {
      run_cell("rejoin", severity, method,
               make_rejoin_plan(severity > 0.0, rounds, /*seed=*/91));
    }
  }

  json.end_array();
  json.end_object();
  out << "\n";

  table.print(std::cout);
  std::cout << "\nJSON degradation curves written to " << out_path << "\n";
  std::cout << "shape check: severity 0 matches the healthy run; accuracy "
               "decays and sim\ntime inflates as severity grows, with Marsit "
               "degrading gracefully rather than\ndiverging.  Corruption "
               "burns retransmitted bits (and demotes senders past the\n"
               "retry budget); flush-gated rejoins lengthen absences but "
               "re-enter only where\ncompensation is zero.\n";
  return 0;
}
