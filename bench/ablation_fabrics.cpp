// Fabric ablation — one synchronization of a 25M-parameter model across all
// four fabrics (ring, 2-D torus, binomial tree, parameter server) × three
// wire formats (float32, growing sign-sums, Marsit one-bit), at M = 32.
//
// The paper implements RAR and TAR and claims easy extension to
// segmented-ring and tree all-reduce; the weighted ⊙ operator indeed folds
// tree merges (tests/collectives_tree_test.cpp), and this bench quantifies
// when each fabric wins: the ring is bandwidth-optimal, the tree is
// latency-optimal, the torus sits between, and the PS serializes on its
// server NIC.
#include "bench_util.hpp"
#include "collectives/timing.hpp"

using namespace marsit;
using namespace marsit::bench;

int main(int argc, char** argv) {
  quiet_logs();
  const std::size_t m = 32;
  const std::size_t d = arg_override(argc, argv, "--params", 25u * 1000 * 1000);
  const CostModel model;

  print_header(
      "Fabric ablation: one synchronization at M=32, 25M parameters",
      {"ring bandwidth-optimal, tree latency-optimal, torus in between, PS "
       "server-bound; Marsit's 1-bit payloads help every fabric"});

  struct Format {
    std::string label;
    WireFormat wire;
  };
  const std::vector<Format> formats = {
      {"float32", full_precision_wire()},
      {"sign-sum", sign_sum_wire(model)},
      {"Marsit 1-bit", marsit_wire(model)},
  };

  TextTable table({"wire format", "ring x32", "torus 4x8", "tree x32",
                   "PS x32"});
  for (const Format& format : formats) {
    std::vector<std::string> row = {format.label};
    {
      NetworkSim net(m, model);
      row.push_back(format_duration(
          ring_allreduce_timing(m, d, format.wire, net).completion_seconds));
    }
    {
      NetworkSim net(m, model);
      row.push_back(format_duration(
          torus_allreduce_timing(4, 8, d, format.wire, net)
              .completion_seconds));
    }
    {
      NetworkSim net(m, model);
      row.push_back(format_duration(
          tree_allreduce_timing(m, d, format.wire, net).completion_seconds));
    }
    {
      NetworkSim net(m + 1, model);
      row.push_back(format_duration(
          ps_allreduce_timing(m, d, format.wire, net).completion_seconds));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  // Latency-bound regime: small payload, same fabrics.
  std::cout << "\nlatency-bound regime (64k parameters):\n\n";
  TextTable small({"wire format", "ring x32", "torus 4x8", "tree x32"});
  const std::size_t small_d = 1 << 16;
  for (const Format& format : formats) {
    std::vector<std::string> row = {format.label};
    {
      NetworkSim net(m, model);
      row.push_back(format_duration(
          ring_allreduce_timing(m, small_d, format.wire, net)
              .completion_seconds));
    }
    {
      NetworkSim net(m, model);
      row.push_back(format_duration(
          torus_allreduce_timing(4, 8, small_d, format.wire, net)
              .completion_seconds));
    }
    {
      NetworkSim net(m, model);
      row.push_back(format_duration(
          tree_allreduce_timing(m, small_d, format.wire, net)
              .completion_seconds));
    }
    small.add_row(std::move(row));
  }
  small.print(std::cout);
  std::cout << "\nshape check: at 25M params the ring/torus rows beat the "
               "tree (bandwidth\nbound); at 64k params the tree's 2 log2(M) "
               "hops beat the ring's 2(M-1).\n";
  return 0;
}
