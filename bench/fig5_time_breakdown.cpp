// Figure 5 — Per-round time breakdown (computation / compression /
// communication) for the six methods under RAR and TAR at the paper's
// cluster scale (32 workers), training AlexNet on CIFAR-10 (23M params).
//
// Paper shape: communication dominates under RAR; every method communicates
// faster under TAR; Marsit(-100) spends the least time communicating, with
// only minor compression overhead.
//
// Cost-model experiment.  The sign-sum baselines' Elias-coded wire image is
// measured from real data (32 random sign vectors folded through the actual
// codec) rather than assumed.  Pass `--out PATH` to also write the breakdown
// as machine-readable JSON.
#include <fstream>
#include <optional>

#include "bench_util.hpp"
#include "collectives/aggregators.hpp"
#include "collectives/timing.hpp"
#include "compress/sign_codec.hpp"
#include "compress/sign_sum.hpp"
#include "obs/json_writer.hpp"
#include "tensor/ops.hpp"

using namespace marsit;
using namespace marsit::bench;

namespace {

/// Measures Elias-γ bits/element per contribution count on synthetic
/// correlated gradients (shared signal + worker noise), 32 workers.
std::vector<double> measured_elias_bits(std::size_t workers, Rng& rng) {
  const std::size_t d = 1 << 16;
  Tensor signal(d);
  fill_normal(signal.span(), rng, 0.0f, 1.0f);
  std::vector<BitVector> signs;
  Tensor g(d);
  for (std::size_t w = 0; w < workers; ++w) {
    for (std::size_t i = 0; i < d; ++i) {
      g[i] = signal[i] + static_cast<float>(rng.normal(0.0, 1.0));
    }
    signs.push_back(pack_signs(g.span()));
  }
  return aggregate_sign_sum(signs, true).elias_bits_per_element;
}

}  // namespace

int main(int argc, char** argv) {
  quiet_logs();
  const std::size_t workers = 32;
  const std::size_t rows = 4, cols = 8;
  const std::size_t d = arg_override(argc, argv, "--params", 23u * 1000 * 1000);
  const CostModel model;

  // AlexNet on CIFAR-10, 16-sample local batch.
  const double compute_seconds =
      model.compute_seconds(6.0 * static_cast<double>(d) * 16.0);

  print_header(
      "Figure 5: per-round time breakdown under RAR and TAR (M=32, "
      "AlexNet-scale)",
      {"communication dominates under RAR; TAR faster for every method;",
       "Marsit's communication smallest with minor compression overhead"});

  Rng rng(18);
  const std::vector<double> elias_bpe = measured_elias_bits(workers, rng);
  // A real sender picks the cheaper of the fixed-width and Elias encodings
  // per message (one header bit decides); on correlated gradients the
  // fixed width often wins (see bench/ablation_elias).
  auto elias_lookup = [elias_bpe](std::size_t contributions) {
    const std::size_t index =
        std::min(contributions, elias_bpe.size()) - 1;
    return std::min(elias_bpe[index],
                    static_cast<double>(
                        sign_sum_bits_per_element(contributions)));
  };

  struct MethodWire {
    std::string label;
    WireFormat wire;
  };
  const std::vector<MethodWire> methods = {
      {"PSGD", full_precision_wire()},
      {"signSGD", sign_sum_elias_wire(model, elias_lookup)},
      {"EF-signSGD", sign_sum_elias_wire(model, elias_lookup)},
      {"SSDM", sign_sum_elias_wire(model, elias_lookup)},
      {"Marsit-100", marsit_wire(model)},
      {"Marsit", marsit_wire(model)},
  };

  std::string out_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--out") {
      out_path = argv[i + 1];
    }
  }
  std::ofstream out_stream;
  std::optional<obs::JsonWriter> json;
  if (!out_path.empty()) {
    out_stream.open(out_path);
    MARSIT_CHECK(out_stream.good()) << "cannot open " << out_path;
    json.emplace(out_stream, /*pretty=*/true);
    json->begin_object();
    json->kv("workers", workers);
    json->kv("params", d);
    json->kv("compute_seconds", compute_seconds);
    json->key("cells");
    json->begin_array();
  }

  TextTable table({"paradigm", "method", "compute", "compression",
                   "communication", "round total"});
  for (const char* paradigm : {"RAR", "TAR"}) {
    for (const MethodWire& method : methods) {
      NetworkSim net(workers, model);
      CollectiveTiming timing;
      if (std::string(paradigm) == "RAR") {
        timing = ring_allreduce_timing(workers, d, method.wire, net);
      } else {
        timing = torus_allreduce_timing(rows, cols, d, method.wire, net);
      }
      // Marsit-100 amortizes one 32-bit round per 100: add 1 % of the
      // full-precision round's extra cost.
      if (method.label == "Marsit-100") {
        NetworkSim fp_net(workers, model);
        const CollectiveTiming fp =
            std::string(paradigm) == "RAR"
                ? ring_allreduce_timing(workers, d, full_precision_wire(),
                                        fp_net)
                : torus_allreduce_timing(rows, cols, d,
                                         full_precision_wire(), fp_net);
        timing.completion_seconds +=
            (fp.completion_seconds - timing.completion_seconds) / 100.0;
      }
      table.add_row({paradigm, method.label,
                     format_duration(compute_seconds),
                     format_duration(timing.compression_seconds_per_worker()),
                     format_duration(timing.communication_seconds()),
                     format_duration(compute_seconds +
                                     timing.completion_seconds)});
      if (json) {
        json->begin_object();
        json->kv("paradigm", paradigm);
        json->kv("method", method.label);
        json->kv("compression_seconds",
                 timing.compression_seconds_per_worker());
        json->kv("communication_seconds", timing.communication_seconds());
        json->kv("round_seconds",
                 compute_seconds + timing.completion_seconds);
        json->kv("total_wire_bits", timing.total_wire_bits);
        json->end_object();
      }
    }
  }
  if (json) {
    json->end_array();
    json->end_object();
    json.reset();
    out_stream << "\n";
    std::cout << "\nJSON breakdown written to " << out_path << "\n";
  }
  table.print(std::cout);
  std::cout << "\nshape check: each method's communication bar shrinks from "
               "RAR to TAR;\nMarsit rows have the shortest communication and "
               "a small compression bar.\n";
  return 0;
}
