// Shared plumbing for the table/figure reproduction benches.
//
// Every bench binary prints (a) the paper's expectation for the experiment
// it regenerates and (b) the measured rows, through TextTable, so the output
// is directly comparable to the paper (EXPERIMENTS.md records the
// comparison).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
// marsit-lint: allow(header-hygiene): bench mains print via std::cout and
// this is their shared, bench-only helper header — no library includes it.
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/sync_strategy.hpp"
#include "data/dataset.hpp"
#include "nn/sequential.hpp"
#include "sim/trainer.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace marsit::bench {

/// Ring SyncConfig with the repo-wide default cost model.
inline SyncConfig ring_config(std::size_t workers, std::uint64_t seed = 2022) {
  SyncConfig config;
  config.num_workers = workers;
  config.paradigm = MarParadigm::kRing;
  config.seed = seed;
  return config;
}

inline SyncConfig torus_config(std::size_t rows, std::size_t cols,
                               std::uint64_t seed = 2022) {
  SyncConfig config;
  config.num_workers = rows * cols;
  config.paradigm = MarParadigm::kTorus2d;
  config.torus_rows = rows;
  config.torus_cols = cols;
  config.seed = seed;
  return config;
}

/// The six methods of Table 2 / Figures 4 and 5, in paper order.
struct MethodSpec {
  std::string label;
  SyncMethod method;
  std::size_t full_precision_period = 0;  // Marsit's K
};

inline std::vector<MethodSpec> paper_method_lineup() {
  return {
      {"PSGD", SyncMethod::kPsgd, 0},
      {"signSGD", SyncMethod::kSignSgdMv, 0},
      {"EF-signSGD", SyncMethod::kEfSignSgd, 0},
      {"SSDM", SyncMethod::kSsdm, 0},
      {"Marsit-100", SyncMethod::kMarsit, 100},
      {"Marsit", SyncMethod::kMarsit, 0},
  };
}

inline std::unique_ptr<SyncStrategy> build_method(const MethodSpec& spec,
                                                  SyncConfig config,
                                                  float eta_s) {
  MethodOptions options;
  options.eta_s = eta_s;
  options.full_precision_period = spec.full_precision_period;
  return make_sync_strategy(spec.method, config, options);
}

/// Prints a section header followed by the paper's expectation line(s).
inline void print_header(const std::string& title,
                         const std::vector<std::string>& paper_notes) {
  std::cout << "\n=== " << title << " ===\n";
  for (const auto& note : paper_notes) {
    std::cout << "paper: " << note << "\n";
  }
  std::cout << "\n";
}

/// Parses an optional positive-integer CLI override (bench binaries accept
/// `--rounds N` style scaling so CI can run them shorter).
inline std::size_t arg_override(int argc, char** argv, const std::string& key,
                                std::size_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == key) {
      const long value = std::atol(argv[i + 1]);
      if (value > 0) {
        return static_cast<std::size_t>(value);
      }
    }
  }
  return fallback;
}

inline void quiet_logs() { set_log_level(LogLevel::kWarning); }

}  // namespace marsit::bench
